//! Capture loading and deterministic replay.
//!
//! A capture file (see [`crate::capture`]) holds everything needed to
//! re-drive the service: the post-restore state and tuning configuration
//! of every model, and every estimate/feedback the service processed, in
//! per-model execution order. [`Capture::load`] parses and integrity-checks
//! the file; [`Capture::replay`] rebuilds the registry from the recorded
//! snapshots and pushes the recorded operations back through a fresh
//! service, asserting that every replayed estimate is **bitwise identical**
//! to the recorded one.
//!
//! Why bitwise equality is attainable: estimates never mutate model state;
//! the fused `estimate_batch` path is pinned bit-identical per query to
//! sequential estimates regardless of batch shape; feedback application is
//! deterministic given the model state and the replacement rows the refresh
//! source installed — and those rows are in the capture, so replay scripts
//! a refresh source that re-installs exactly them. The per-model record
//! order in the file is the order the single executor thread actually
//! applied them, which replay reproduces with a flush barrier after every
//! feedback.
//!
//! The loader is deliberately strict: it rejects records whose `"v"` schema
//! version is missing or unexpected, and it treats an unparsable final line
//! or a missing/inconsistent `capture.end` footer as a truncated capture —
//! the failure mode of a crashed or killed service whose sink never
//! flushed its tail.

use crate::capture::COLUMN_SEPARATOR;
use crate::config::ServeConfig;
use crate::model::{ModelKey, ServedModel};
use crate::service::Service;
use kdesel_device::{Backend, Device};
use kdesel_estimators::{
    ExactScanEstimator, HybridEstimator, LearnedConfig, LearnedEstimator, RouterConfig,
};
use kdesel_kde::{
    AdaptiveConfig, AdaptiveKde, KarmaConfig, LossFunction, ModelSnapshot, RmsPropConfig,
};
use kdesel_telemetry::JSONL_SCHEMA_VERSION;
use kdesel_types::{QueryFeedback, Rect};
use std::collections::VecDeque;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How fast [`Capture::replay`] pushes operations at the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplaySpeed {
    /// As fast as the service absorbs them (determinism smoke-testing).
    Max,
    /// Paced to the recorded inter-arrival gaps (load reproduction).
    Realtime,
}

/// One registry entry reconstructed from a `capture.model` record.
#[derive(Debug)]
pub struct CapturedModel {
    /// Capture-internal model ID (the `m` field of operation records).
    pub id: u64,
    /// Registry key.
    pub key: ModelKey,
    backend: Backend,
    snapshot: ModelSnapshot,
    kind: CapturedKind,
}

#[derive(Debug)]
enum CapturedKind {
    Static,
    Adaptive {
        refresh: bool,
        adaptive: AdaptiveConfig,
        karma: KarmaConfig,
    },
    Hybrid {
        refresh: bool,
        adaptive: AdaptiveConfig,
        karma: KarmaConfig,
        router: RouterConfig,
        learned: LearnedConfig,
    },
}

/// One recorded service operation, in capture-file order.
#[derive(Debug)]
pub enum Op {
    /// A served estimate (`serve.request` root span).
    Estimate {
        /// Capture-internal model ID.
        model: u64,
        /// Trace minted at the original front door.
        trace: u64,
        /// Queried region.
        region: Rect,
        /// The estimate the original run produced — replay must match it
        /// bit for bit.
        estimate: f64,
        /// Seconds since the original run's telemetry epoch.
        at: f64,
    },
    /// An applied feedback item (`serve.feedback` span).
    Feedback {
        /// Capture-internal model ID.
        model: u64,
        /// Trace of the request this answered (0 = untraced).
        trace: u64,
        /// The feedback triple.
        feedback: QueryFeedback,
        /// Replacement tuples the refresh source installed, in order.
        replacements: Vec<(usize, Vec<f64>)>,
        /// Seconds since the original run's telemetry epoch.
        at: f64,
    },
}

impl Op {
    fn at(&self) -> f64 {
        match self {
            Op::Estimate { at, .. } | Op::Feedback { at, .. } => *at,
        }
    }
}

/// One span's identity, kept for tree verification.
#[derive(Debug)]
struct SpanRecord {
    name: String,
    trace: u64,
    span: u64,
    parent: u64,
}

/// Counts returned by a successful [`Capture::replay`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayOutcome {
    /// Estimates replayed (all bitwise identical to the capture).
    pub estimates: u64,
    /// Feedback items re-applied.
    pub feedback: u64,
    /// Karma replacement tuples re-installed from the capture script.
    pub replacements: u64,
}

/// A loaded, integrity-checked workload capture.
#[derive(Debug)]
pub struct Capture {
    /// Registry entries, in capture-ID order.
    pub models: Vec<CapturedModel>,
    /// Operations in file order (= per-model execution order).
    pub ops: Vec<Op>,
    spans: Vec<SpanRecord>,
}

impl Capture {
    /// Parses and integrity-checks a capture file. Fails on schema-version
    /// mismatch, malformed records, and truncation (unparsable last line,
    /// or a missing/inconsistent `capture.end` footer).
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading capture {}: {e}", path.display()))?;
        let lines: Vec<&str> = text.lines().collect();
        if lines.is_empty() {
            return Err("empty capture file".to_string());
        }
        let mut models: Vec<CapturedModel> = Vec::new();
        let mut ops = Vec::new();
        let mut spans = Vec::new();
        let mut declared_models = None;
        let mut footer: Option<(usize, u64)> = None;
        for (i, line) in lines.iter().enumerate() {
            let last = i + 1 == lines.len();
            let record = match parse_record(line) {
                Ok(record) => record,
                Err(e) if last => {
                    return Err(format!("truncated capture: unparsable final line: {e}"))
                }
                Err(e) => return Err(format!("malformed capture line {}: {e}", i + 1)),
            };
            match record.u64("v") {
                Ok(v) if v == u64::from(JSONL_SCHEMA_VERSION) => {}
                Ok(v) => {
                    return Err(format!(
                        "capture schema version {v} (expected {JSONL_SCHEMA_VERSION})"
                    ))
                }
                Err(_) => return Err(format!("line {}: missing schema version field", i + 1)),
            }
            match record.str("event")? {
                "capture.header" => declared_models = Some(record.u64("models")?),
                "capture.model" => models.push(parse_model(&record)?),
                "serve.request" => {
                    spans.push(record.span()?);
                    ops.push(Op::Estimate {
                        model: record.u64("m")?,
                        trace: record.u64("trace")?,
                        region: Rect::new(record.f64s("lo")?, record.f64s("hi")?),
                        estimate: record.f64("estimate")?,
                        at: record.f64("t")?,
                    });
                }
                "serve.batch" | "serve.launch" => spans.push(record.span()?),
                "serve.feedback" => {
                    spans.push(record.span()?);
                    let model = record.u64("m")?;
                    let dims = models
                        .iter()
                        .find(|m| m.id == model)
                        .map(|m| m.snapshot.dims)
                        .ok_or_else(|| format!("feedback for undeclared model {model}"))?;
                    ops.push(Op::Feedback {
                        model,
                        trace: record.u64("trace")?,
                        feedback: QueryFeedback {
                            region: Rect::new(record.f64s("lo")?, record.f64s("hi")?),
                            estimate: record.f64("estimate")?,
                            actual: record.f64("actual")?,
                            cardinality: record.u64("cardinality")?,
                        },
                        replacements: parse_replacements(&record, dims)?,
                        at: record.f64("t")?,
                    });
                }
                "capture.end" => footer = Some((i, record.u64("records")?)),
                _ => {} // forward compatibility: unknown record kinds are skipped
            }
        }
        match footer {
            None => Err("truncated capture: no capture.end footer".to_string()),
            Some((index, _)) if index + 1 != lines.len() => {
                Err("corrupt capture: records after the capture.end footer".to_string())
            }
            Some((index, declared)) if declared != index as u64 => Err(format!(
                "truncated capture: footer declares {declared} records, file has {index}"
            )),
            Some(_) => {
                if let Some(declared) = declared_models {
                    if declared != models.len() as u64 {
                        return Err(format!(
                            "truncated capture: header declares {declared} models, found {}",
                            models.len()
                        ));
                    }
                }
                Ok(Self { models, ops, spans })
            }
        }
    }

    /// Verifies that every traced operation has its complete span tree:
    /// per estimate, a `serve.request` root (span == trace, parent == 0),
    /// a `serve.batch` child of the root, and a `serve.launch` child of
    /// that batch span; per traced feedback, a `serve.feedback` child of
    /// the root. Returns the number of verified trees.
    pub fn verify_spans(&self) -> Result<u64, String> {
        let mut verified = 0;
        for op in &self.ops {
            match op {
                Op::Estimate { trace, .. } => {
                    let root = self
                        .spans
                        .iter()
                        .find(|s| s.name == "serve.request" && s.trace == *trace)
                        .ok_or_else(|| format!("trace {trace}: dropped serve.request span"))?;
                    if root.span != *trace || root.parent != 0 {
                        return Err(format!("trace {trace}: serve.request is not a root span"));
                    }
                    let batch = self
                        .spans
                        .iter()
                        .find(|s| {
                            s.name == "serve.batch" && s.trace == *trace && s.parent == *trace
                        })
                        .ok_or_else(|| format!("trace {trace}: dropped serve.batch span"))?;
                    self.spans
                        .iter()
                        .find(|s| {
                            s.name == "serve.launch" && s.trace == *trace && s.parent == batch.span
                        })
                        .ok_or_else(|| format!("trace {trace}: dropped serve.launch span"))?;
                    verified += 1;
                }
                Op::Feedback { trace, .. } if *trace != 0 => {
                    self.spans
                        .iter()
                        .find(|s| {
                            s.name == "serve.feedback" && s.trace == *trace && s.parent == *trace
                        })
                        .ok_or_else(|| format!("trace {trace}: dropped serve.feedback span"))?;
                    verified += 1;
                }
                Op::Feedback { .. } => {}
            }
        }
        Ok(verified)
    }

    /// Rebuilds the registry from the captured snapshots and re-drives
    /// every recorded operation through a fresh service, failing on the
    /// first estimate that is not bitwise identical to the capture.
    ///
    /// Coalescing is disabled (`max_batch == 1`) so the replayed launch
    /// sequence is fully determined by the op order — legitimate because
    /// batch shape provably never changes per-query results.
    pub fn replay(&self, speed: ReplaySpeed) -> Result<ReplayOutcome, String> {
        // Scripted refresh state, one per model: the queue of recorded
        // replacements tagged with their op index, and a cursor the driver
        // advances so a flagged slot can only consume replacements that
        // the *current* feedback op actually installed.
        type Script = Arc<(Mutex<VecDeque<(usize, usize, Vec<f64>)>>, AtomicUsize)>;
        fn scripted_refresh(script: &Script) -> crate::model::RefreshFn {
            let script = Arc::clone(script);
            Box::new(move |slot| {
                let (queue, cursor) = &*script;
                let mut queue = queue.lock().expect("script lock");
                match queue.front() {
                    Some((op, s, _)) if *op == cursor.load(Ordering::SeqCst) && *s == slot => {
                        queue.pop_front().map(|(_, _, row)| row)
                    }
                    _ => None,
                }
            })
        }
        let mut scripts: Vec<Script> = Vec::new();
        for model in &self.models {
            let queue = self
                .ops
                .iter()
                .enumerate()
                .filter_map(|(i, op)| match op {
                    Op::Feedback {
                        model: m,
                        replacements,
                        ..
                    } if *m == model.id => Some((i, replacements)),
                    _ => None,
                })
                .flat_map(|(i, replacements)| {
                    replacements
                        .iter()
                        .map(move |(slot, row)| (i, *slot, row.clone()))
                })
                .collect();
            scripts.push(Arc::new((Mutex::new(queue), AtomicUsize::new(0))));
        }

        let mut builder = Service::builder(ServeConfig {
            max_batch: 1,
            max_wait: Duration::ZERO,
            ..ServeConfig::default()
        });
        for (model, script) in self.models.iter().zip(&scripts) {
            crate::snapshot::validate(&model.snapshot)
                .map_err(|e| format!("captured model {}: {e}", model.key))?;
            let estimator = model.snapshot.restore(Device::new(model.backend));
            let served = match &model.kind {
                CapturedKind::Static => ServedModel::fixed(estimator),
                CapturedKind::Adaptive {
                    refresh,
                    adaptive,
                    karma,
                } => {
                    let kde =
                        AdaptiveKde::from_estimator(estimator, adaptive.clone(), karma.clone());
                    if *refresh {
                        ServedModel::adaptive_with_refresh(kde, scripted_refresh(script))
                    } else {
                        ServedModel::adaptive(kde)
                    }
                }
                CapturedKind::Hybrid {
                    refresh,
                    adaptive,
                    karma,
                    router,
                    learned,
                } => {
                    let dims = model.snapshot.dims;
                    let kde =
                        AdaptiveKde::from_estimator(estimator, adaptive.clone(), karma.clone());
                    let learned_model =
                        LearnedEstimator::train(&model.snapshot.sample, dims, learned);
                    let exact = ExactScanEstimator::new(
                        Device::new(model.backend),
                        &model.snapshot.sample,
                        dims,
                    );
                    let hybrid = HybridEstimator::new(kde, learned_model, exact, router.clone())
                        .with_learned_config(learned.clone());
                    if *refresh {
                        ServedModel::hybrid_with_refresh(hybrid, scripted_refresh(script))
                    } else {
                        ServedModel::hybrid(hybrid)
                    }
                }
            };
            builder = builder.register(model.key.clone(), served);
        }
        let service = builder.build().map_err(|e| e.to_string())?;
        let handle = service.handle();

        let key_of = |id: u64| -> Result<&ModelKey, String> {
            self.models
                .iter()
                .find(|m| m.id == id)
                .map(|m| &m.key)
                .ok_or_else(|| format!("operation for undeclared model {id}"))
        };
        let script_of = |id: u64| {
            let index = self
                .models
                .iter()
                .position(|m| m.id == id)
                .expect("key_of ran");
            &scripts[index]
        };
        let mut outcome = ReplayOutcome {
            estimates: 0,
            feedback: 0,
            replacements: 0,
        };
        let started = Instant::now();
        let epoch = self.ops.first().map_or(0.0, Op::at);
        for (i, op) in self.ops.iter().enumerate() {
            if speed == ReplaySpeed::Realtime {
                let offset = Duration::from_secs_f64((op.at() - epoch).max(0.0));
                if let Some(sleep) = offset.checked_sub(started.elapsed()) {
                    std::thread::sleep(sleep);
                }
            }
            match op {
                Op::Estimate {
                    model,
                    region,
                    estimate,
                    ..
                } => {
                    let got = handle
                        .estimate(key_of(*model)?, region)
                        .map_err(|e| e.to_string())?;
                    if got.to_bits() != estimate.to_bits() {
                        return Err(format!(
                            "estimate mismatch at op {i} (model {}): capture {estimate:?}, \
                             replay {got:?}",
                            key_of(*model)?
                        ));
                    }
                    outcome.estimates += 1;
                }
                Op::Feedback {
                    model,
                    trace,
                    feedback,
                    replacements,
                    ..
                } => {
                    let key = key_of(*model)?;
                    script_of(*model).1.store(i, Ordering::SeqCst);
                    handle
                        .feedback_traced(key, feedback.clone(), *trace)
                        .map_err(|e| e.to_string())?;
                    // Barrier: the original executor applied this item
                    // before recording anything later for this model.
                    handle.flush(key).map_err(|e| e.to_string())?;
                    outcome.feedback += 1;
                    outcome.replacements += replacements.len() as u64;
                }
            }
        }
        service.shutdown().map_err(|e| e.to_string())?;
        for (model, script) in self.models.iter().zip(&scripts) {
            let leftover = script.0.lock().expect("script lock").len();
            if leftover > 0 {
                return Err(format!(
                    "replay diverged: {leftover} captured replacement(s) for model {} were \
                     never requested by Karma",
                    model.key
                ));
            }
        }
        Ok(outcome)
    }
}

fn parse_model(record: &Record) -> Result<CapturedModel, String> {
    let columns: Vec<String> = record
        .str("columns")?
        .split(COLUMN_SEPARATOR)
        .map(str::to_string)
        .collect();
    let column_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let backend = match record.str("backend")? {
        "cpu-seq" => Backend::CpuSeq,
        "cpu-par" => Backend::CpuPar,
        "sim-gpu" => Backend::SimGpu,
        other => return Err(format!("unknown backend {other:?}")),
    };
    let snapshot = ModelSnapshot {
        sample: record.f64s("sample")?,
        dims: usize::try_from(record.u64("dims")?).map_err(|e| e.to_string())?,
        kernel: record.str("kernel")?.to_string(),
        bandwidth: record.f64s("bandwidth")?,
        router: None,
    };
    fn parse_tuning(record: &Record) -> Result<(AdaptiveConfig, KarmaConfig), String> {
        Ok((
            AdaptiveConfig {
                loss: parse_loss(record.str("loss")?)?,
                mini_batch: usize::try_from(record.u64("mini_batch")?)
                    .map_err(|e| e.to_string())?,
                log_updates: record.u64("log_updates")? != 0,
                rmsprop: RmsPropConfig {
                    smoothing: record.f64("rms_smoothing")?,
                    rate_init: record.f64("rms_rate_init")?,
                    rate_min: record.f64("rms_rate_min")?,
                    rate_max: record.f64("rms_rate_max")?,
                    rate_inc: record.f64("rms_rate_inc")?,
                    rate_dec: record.f64("rms_rate_dec")?,
                    epsilon: record.f64("rms_epsilon")?,
                },
            },
            KarmaConfig {
                loss: parse_loss(record.str("karma_loss")?)?,
                k_max: record.f64("karma_k_max")?,
                threshold: record.f64("karma_threshold")?,
                empty_region_shortcut: record.u64("karma_shortcut")? != 0,
            },
        ))
    }
    let kind = match record.str("kind")? {
        "static" => CapturedKind::Static,
        "adaptive" => {
            let (adaptive, karma) = parse_tuning(record)?;
            CapturedKind::Adaptive {
                refresh: record.u64("refresh")? != 0,
                adaptive,
                karma,
            }
        }
        "hybrid" => {
            let (adaptive, karma) = parse_tuning(record)?;
            CapturedKind::Hybrid {
                refresh: record.u64("refresh")? != 0,
                adaptive,
                karma,
                router: RouterConfig {
                    window: usize::try_from(record.u64("router_window")?)
                        .map_err(|e| e.to_string())?,
                    latency_budget: record.f64("router_budget")?,
                    probe_every: record.u64("router_probe")?,
                },
                learned: LearnedConfig {
                    bins: usize::try_from(record.u64("learned_bins")?)
                        .map_err(|e| e.to_string())?,
                    paths: usize::try_from(record.u64("learned_paths")?)
                        .map_err(|e| e.to_string())?,
                    l2: record.f64("learned_l2")?,
                    ..LearnedConfig::default()
                },
            }
        }
        other => return Err(format!("unknown model kind {other:?}")),
    };
    Ok(CapturedModel {
        id: record.u64("m")?,
        key: ModelKey::new(record.str("table")?, &column_refs),
        backend,
        snapshot,
        kind,
    })
}

fn parse_loss(name: &str) -> Result<LossFunction, String> {
    LossFunction::ALL
        .iter()
        .copied()
        .find(|l| l.name() == name)
        .ok_or_else(|| format!("unknown loss function {name:?}"))
}

/// Decodes the `slots` (space-separated indices) and `rows` (flattened
/// row-major floats) fields back into `(slot, row)` pairs.
fn parse_replacements(record: &Record, dims: usize) -> Result<Vec<(usize, Vec<f64>)>, String> {
    let slots: Vec<usize> = record
        .str("slots")?
        .split(' ')
        .filter(|s| !s.is_empty())
        .map(|s| s.parse::<usize>().map_err(|e| format!("slot {s:?}: {e}")))
        .collect::<Result<_, _>>()?;
    let rows = record.f64s("rows")?;
    if rows.len() != slots.len() * dims {
        return Err(format!(
            "{} replacement slots but {} row values for dims {dims}",
            slots.len(),
            rows.len()
        ));
    }
    Ok(slots
        .into_iter()
        .zip(rows.chunks_exact(dims.max(1)))
        .map(|(slot, row)| (slot, row.to_vec()))
        .collect())
}

/// One flat JSON object, values kept as raw text (numbers) or unescaped
/// strings, so numeric fields can be re-parsed exactly on demand.
#[derive(Debug)]
struct Record {
    fields: Vec<(String, Field)>,
}

#[derive(Debug)]
enum Field {
    Str(String),
    Num(String),
}

impl Record {
    fn field(&self, key: &str) -> Result<&Field, String> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing field {key:?}"))
    }

    fn str(&self, key: &str) -> Result<&str, String> {
        match self.field(key)? {
            Field::Str(s) => Ok(s),
            Field::Num(_) => Err(format!("field {key:?} is not a string")),
        }
    }

    fn u64(&self, key: &str) -> Result<u64, String> {
        match self.field(key)? {
            Field::Num(raw) => raw
                .parse::<u64>()
                .map_err(|e| format!("field {key:?}={raw:?}: {e}")),
            Field::Str(_) => Err(format!("field {key:?} is not an integer")),
        }
    }

    /// Exact float decode: capture floats are written with round-trip
    /// (`{:?}`) formatting and Rust's float parser is correctly rounded,
    /// so the value read back is bit-identical to the value recorded.
    fn f64(&self, key: &str) -> Result<f64, String> {
        match self.field(key)? {
            Field::Num(raw) => raw
                .parse::<f64>()
                .map_err(|e| format!("field {key:?}={raw:?}: {e}")),
            Field::Str(_) => Err(format!("field {key:?} is not a number")),
        }
    }

    /// Decodes a space-separated float-slice field (see
    /// `kdesel_telemetry::EventBuilder::f64_slice`).
    fn f64s(&self, key: &str) -> Result<Vec<f64>, String> {
        self.str(key)?
            .split(' ')
            .filter(|s| !s.is_empty())
            .map(|s| {
                s.parse::<f64>()
                    .map_err(|e| format!("field {key:?} element {s:?}: {e}"))
            })
            .collect()
    }

    fn span(&self) -> Result<SpanRecord, String> {
        Ok(SpanRecord {
            name: self.str("event")?.to_string(),
            trace: self.u64("trace")?,
            span: self.u64("span")?,
            parent: self.u64("parent")?,
        })
    }
}

/// Parses one flat JSON object (string and number values only — the
/// telemetry JSONL encoder emits nothing else).
fn parse_record(line: &str) -> Result<Record, String> {
    let bytes = line.as_bytes();
    let mut pos = 0usize;
    let mut fields = Vec::new();

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    }
    fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&c) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", char::from(c), *pos))
        }
    }
    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(bytes, pos, b'"')?;
        let mut out = String::new();
        loop {
            match bytes.get(*pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = bytes
                                .get(*pos + 1..*pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid codepoint {code:#x}"))?,
                            );
                            *pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through verbatim.
                    let s = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }

    expect(bytes, &mut pos, b'{')?;
    skip_ws(bytes, &mut pos);
    if bytes.get(pos) == Some(&b'}') {
        return Err("empty record".to_string());
    }
    loop {
        let key = parse_string(bytes, &mut pos)?;
        expect(bytes, &mut pos, b':')?;
        skip_ws(bytes, &mut pos);
        let value = match bytes.get(pos) {
            Some(b'"') => Field::Str(parse_string(bytes, &mut pos)?),
            Some(c) if c.is_ascii_digit() || *c == b'-' => {
                let start = pos;
                while pos < bytes.len()
                    && matches!(bytes[pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                {
                    pos += 1;
                }
                Field::Num(line[start..pos].to_string())
            }
            other => return Err(format!("unsupported value start {other:?} at byte {pos}")),
        };
        fields.push((key, value));
        skip_ws(bytes, &mut pos);
        match bytes.get(pos) {
            Some(b',') => pos += 1,
            Some(b'}') => {
                pos += 1;
                break;
            }
            other => return Err(format!("expected ',' or '}}', got {other:?}")),
        }
    }
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes after record at {pos}"));
    }
    Ok(Record { fields })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_round_trips_floats_bit_exactly() {
        let values = [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -0.0];
        let joined = values
            .iter()
            .map(|v| format!("{v:?}"))
            .collect::<Vec<_>>()
            .join(" ");
        let line = format!(r#"{{"v":1,"event":"x","t":0.5,"xs":"{joined}","n":42}}"#);
        let record = parse_record(&line).unwrap();
        let decoded = record.f64s("xs").unwrap();
        assert_eq!(decoded.len(), values.len());
        for (a, b) in values.iter().zip(&decoded) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a:?} vs {b:?}");
        }
        assert_eq!(record.u64("n").unwrap(), 42);
        assert_eq!(record.f64("t").unwrap(), 0.5);
    }

    #[test]
    fn parser_unescapes_strings() {
        let line = "{\"v\":1,\"event\":\"x\",\"t\":0.0,\"s\":\"a\\\"b\\\\c\\nd\\u001fe\"}";
        let record = parse_record(line).unwrap();
        assert_eq!(record.str("s").unwrap(), "a\"b\\c\nd\u{1f}e");
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_record("{").is_err());
        assert!(parse_record(r#"{"a":1"#).is_err());
        assert!(parse_record(r#"{"a":1} extra"#).is_err());
        assert!(parse_record(r#"{"a":[1]}"#).is_err(), "arrays unsupported");
    }

    fn write_lines(tag: &str, lines: &[&str]) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("kdesel-replay-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{tag}.jsonl"));
        std::fs::write(&path, lines.join("\n")).unwrap();
        path
    }

    const HEADER: &str = r#"{"v":1,"event":"capture.header","t":0.0,"models":0}"#;

    #[test]
    fn load_detects_missing_footer() {
        let path = write_lines("nofooter", &[HEADER]);
        let err = Capture::load(&path).unwrap_err();
        assert!(err.contains("truncated"), "{err}");
    }

    #[test]
    fn load_detects_torn_final_line() {
        let path = write_lines("torn", &[HEADER, r#"{"v":1,"event":"capture.end","rec"#]);
        let err = Capture::load(&path).unwrap_err();
        assert!(err.contains("truncated"), "{err}");
    }

    #[test]
    fn load_detects_record_count_mismatch() {
        // Footer claims 5 records but only the header precedes it.
        let path = write_lines(
            "count",
            &[
                HEADER,
                r#"{"v":1,"event":"capture.end","t":0.0,"records":5}"#,
            ],
        );
        let err = Capture::load(&path).unwrap_err();
        assert!(err.contains("truncated"), "{err}");
    }

    #[test]
    fn load_rejects_wrong_schema_version() {
        let path = write_lines(
            "version",
            &[
                r#"{"v":99,"event":"capture.header","t":0.0,"models":0}"#,
                r#"{"v":99,"event":"capture.end","t":0.0,"records":1}"#,
            ],
        );
        let err = Capture::load(&path).unwrap_err();
        assert!(err.contains("schema version 99"), "{err}");
    }

    #[test]
    fn load_accepts_minimal_clean_capture() {
        let path = write_lines(
            "clean",
            &[
                HEADER,
                r#"{"v":1,"event":"capture.end","t":0.0,"records":1}"#,
            ],
        );
        let capture = Capture::load(&path).unwrap();
        assert!(capture.models.is_empty());
        assert!(capture.ops.is_empty());
        assert_eq!(capture.verify_spans().unwrap(), 0);
    }
}
