//! Warm-restart persistence: one `ModelSnapshot` JSON file per registry
//! entry, written atomically (temp file + rename) so a crash mid-write
//! never leaves a torn checkpoint behind.

use crate::model::ModelKey;
use kdesel_kde::ModelSnapshot;
use std::fs;
use std::path::{Path, PathBuf};

/// Checkpoint file for `key` inside `dir`.
pub fn snapshot_path(dir: &Path, key: &ModelKey) -> PathBuf {
    dir.join(format!("{}.kdesnap.json", key.file_stem()))
}

/// Writes the snapshot atomically: serialize to `<path>.tmp`, then rename
/// over the final path. Creates `dir` if needed. Returns the final path.
pub fn write_atomic(
    dir: &Path,
    key: &ModelKey,
    snapshot: &ModelSnapshot,
) -> Result<PathBuf, String> {
    fs::create_dir_all(dir)
        .map_err(|e| format!("creating checkpoint dir {}: {e}", dir.display()))?;
    let path = snapshot_path(dir, key);
    let tmp = path.with_extension("json.tmp");
    let json = snapshot.to_json();
    // Observatory gauges: how stale was the checkpoint this write replaces
    // (0 on the first write — nothing was at risk yet), and how large the
    // on-disk state is. Sampled on every write, so a stuck checkpointer
    // shows up as a monotonically aging snapshot in the metrics dump.
    if kdesel_telemetry::enabled() {
        let age = fs::metadata(&path)
            .and_then(|m| m.modified())
            .ok()
            .and_then(|t| t.elapsed().ok())
            .map_or(0.0, |d| d.as_secs_f64());
        kdesel_telemetry::gauge("serve.snapshot_age_s").set(age);
        kdesel_telemetry::gauge("serve.snapshot_bytes").set(json.len() as f64);
    }
    fs::write(&tmp, &json).map_err(|e| format!("writing checkpoint {}: {e}", tmp.display()))?;
    fs::rename(&tmp, &path)
        .map_err(|e| format!("publishing checkpoint {}: {e}", path.display()))?;
    Ok(path)
}

/// Loads the checkpoint for `key`, if one exists. `Ok(None)` when the file
/// is absent (cold start); `Err` on IO failure, malformed JSON, or a
/// snapshot that fails [`validate`].
pub fn load(dir: &Path, key: &ModelKey) -> Result<Option<ModelSnapshot>, String> {
    let path = snapshot_path(dir, key);
    let text = match fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(format!("reading checkpoint {}: {e}", path.display())),
    };
    let snapshot = ModelSnapshot::from_json(&text)
        .map_err(|e| format!("malformed checkpoint {}: {e}", path.display()))?;
    validate(&snapshot).map_err(|e| format!("invalid checkpoint {}: {e}", path.display()))?;
    Ok(Some(snapshot))
}

/// Structural validation beyond JSON well-formedness, so restoring never
/// trips `KdeEstimator::new`'s assertions on attacker-editable files.
pub fn validate(snapshot: &ModelSnapshot) -> Result<(), String> {
    if snapshot.dims == 0 {
        return Err("dims must be positive".to_string());
    }
    if snapshot.sample.is_empty() {
        return Err("sample is empty".to_string());
    }
    if !snapshot.sample.len().is_multiple_of(snapshot.dims) {
        return Err(format!(
            "sample length {} is not a multiple of dims {}",
            snapshot.sample.len(),
            snapshot.dims
        ));
    }
    if snapshot.bandwidth.len() != snapshot.dims {
        return Err(format!(
            "bandwidth has {} entries for dims {}",
            snapshot.bandwidth.len(),
            snapshot.dims
        ));
    }
    if !snapshot.bandwidth.iter().all(|h| h.is_finite() && *h > 0.0) {
        return Err("bandwidth entries must be positive and finite".to_string());
    }
    if !snapshot.sample.iter().all(|v| v.is_finite()) {
        return Err("sample entries must be finite".to_string());
    }
    if !matches!(snapshot.kernel.as_str(), "gaussian" | "epanechnikov") {
        return Err(format!("unknown kernel {:?}", snapshot.kernel));
    }
    if let Some(router) = &snapshot.router {
        router
            .validate()
            .map_err(|e| format!("router state: {e}"))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> ModelSnapshot {
        ModelSnapshot {
            sample: vec![0.1, 0.2, 0.3, 0.4],
            dims: 2,
            kernel: "gaussian".to_string(),
            bandwidth: vec![0.5, 0.6],
            router: None,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "kdesel-serve-snapshot-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn write_then_load_roundtrips() {
        let dir = temp_dir("roundtrip");
        let key = ModelKey::new("orders", &["price"]);
        let snap = snapshot();
        let path = write_atomic(&dir, &key, &snap).unwrap();
        assert!(path.starts_with(&dir));
        assert_eq!(load(&dir, &key).unwrap(), Some(snap));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_sets_observatory_gauges() {
        let dir = temp_dir("gauges");
        let key = ModelKey::new("orders", &["price"]);
        let snap = snapshot();
        kdesel_telemetry::set_enabled(true);
        write_atomic(&dir, &key, &snap).unwrap();
        kdesel_telemetry::set_enabled(false);
        let bytes = kdesel_telemetry::gauge("serve.snapshot_bytes").get();
        assert_eq!(bytes, snap.to_json().len() as f64);
        // First write: there was no previous checkpoint to age.
        assert_eq!(kdesel_telemetry::gauge("serve.snapshot_age_s").get(), 0.0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_cold_start() {
        let dir = temp_dir("missing");
        let key = ModelKey::new("orders", &["price"]);
        assert_eq!(load(&dir, &key).unwrap(), None);
    }

    #[test]
    fn malformed_json_is_an_error_not_a_cold_start() {
        let dir = temp_dir("malformed");
        let key = ModelKey::new("orders", &["price"]);
        fs::create_dir_all(&dir).unwrap();
        fs::write(snapshot_path(&dir, &key), "{not json").unwrap();
        let err = load(&dir, &key).unwrap_err();
        assert!(err.contains("malformed"), "unexpected error {err:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn validate_rejects_structural_corruption() {
        type Corrupt = fn(&mut ModelSnapshot);
        let cases: Vec<(&str, Corrupt)> = vec![
            ("zero dims", |s| s.dims = 0),
            ("empty sample", |s| s.sample.clear()),
            ("ragged sample", |s| s.sample.push(1.0)),
            ("bandwidth arity", |s| {
                s.bandwidth.pop();
            }),
            ("negative bandwidth", |s| s.bandwidth[0] = -1.0),
            ("nan bandwidth", |s| s.bandwidth[0] = f64::NAN),
            ("nan sample", |s| s.sample[0] = f64::NAN),
            ("unknown kernel", |s| s.kernel = "triangular".to_string()),
            ("invalid router state", |s| {
                s.router = Some(kdesel_types::RouterState {
                    families: vec!["kde".to_string()],
                    windows: vec![vec![0.5]],
                    decisions: vec![0],
                    last: None,
                })
            }),
        ];
        for (what, corrupt) in cases {
            let mut snap = snapshot();
            corrupt(&mut snap);
            assert!(validate(&snap).is_err(), "accepted {what}");
        }
        assert!(validate(&snapshot()).is_ok());
    }
}
