//! Registry keys and the served model variants.

use kdesel_device::Device;
use kdesel_estimators::HybridEstimator;
use kdesel_kde::{AdaptiveKde, KdeEstimator, ModelSnapshot};
use kdesel_types::{QueryFeedback, Rect, SelectivityEstimator};
use std::fmt;

/// Registry key: which table and column set a model covers. A production
/// optimizer keys its statistics the same way (Postgres: `pg_statistic`
/// rows per attribute set).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ModelKey {
    table: String,
    columns: Vec<String>,
}

impl ModelKey {
    /// Builds a key from a table name and its estimated column set.
    pub fn new(table: impl Into<String>, columns: &[&str]) -> Self {
        Self {
            table: table.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
        }
    }

    /// Table name.
    pub fn table(&self) -> &str {
        &self.table
    }

    /// Column names, in registration order.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Stable, filesystem-safe stem for this key's checkpoint file:
    /// sanitized names plus an FNV-1a hash of the exact identifiers, so
    /// distinct keys that sanitize identically still get distinct files.
    pub fn file_stem(&self) -> String {
        fn sanitize(out: &mut String, name: &str) {
            for c in name.chars() {
                out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
            }
        }
        let mut stem = String::new();
        sanitize(&mut stem, &self.table);
        for column in &self.columns {
            stem.push('-');
            sanitize(&mut stem, column);
        }
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(self.table.as_bytes());
        for column in &self.columns {
            eat(&[0]); // separator: ("ab","c") != ("a","bc")
            eat(column.as_bytes());
        }
        format!("{stem}-{hash:016x}")
    }

    /// Human-readable, metrics-safe label for this key
    /// (`orders_price_qty`): sanitized like [`file_stem`](Self::file_stem)
    /// but without the hash suffix, so per-model metric names stay
    /// legible on dashboards. Distinct keys that sanitize identically
    /// share a label — acceptable for metrics, not for files.
    pub fn metric_label(&self) -> String {
        fn sanitize(out: &mut String, name: &str) {
            for c in name.chars() {
                out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
            }
        }
        let mut label = String::new();
        sanitize(&mut label, &self.table);
        for column in &self.columns {
            label.push('_');
            sanitize(&mut label, column);
        }
        label
    }
}

impl fmt::Display for ModelKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.table, self.columns.join(","))
    }
}

/// Source of replacement tuples for Karma-flagged sample slots: given the
/// slot index, returns a fresh row sampled from the base table (or `None`
/// if the source is exhausted). Owned by the executor thread, so it may
/// capture an rng and a table handle without synchronization.
pub type RefreshFn = Box<dyn FnMut(usize) -> Option<Vec<f64>> + Send>;

/// A registry entry: either a static estimator (heuristic/SCV/batch
/// bandwidth, no feedback consumption) or the paper's self-tuning
/// adaptive estimator with an optional tuple-refresh source.
pub enum ServedModel {
    /// Fixed-bandwidth model; feedback is accepted and discarded.
    Static(Box<KdeEstimator>),
    /// Self-tuning model (§4): feedback drives RMSprop bandwidth steps and
    /// Karma sample maintenance between batches.
    Adaptive {
        /// The adaptive estimator.
        kde: Box<AdaptiveKde>,
        /// Replacement-tuple source for Karma-flagged slots; without one,
        /// flagged slots are dropped (bandwidth tuning still applies).
        refresh: Option<RefreshFn>,
    },
    /// Three estimator families (adaptive KDE, learned, exact) behind a
    /// cost/error router; feedback flows to the family that answered.
    Hybrid {
        /// The routed estimator bundle.
        hybrid: Box<HybridEstimator>,
        /// Replacement-tuple source for the KDE member's Karma-flagged
        /// slots.
        refresh: Option<RefreshFn>,
    },
}

impl fmt::Debug for ServedModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Static(e) => f.debug_tuple("Static").field(e).finish(),
            Self::Adaptive { kde, refresh } => f
                .debug_struct("Adaptive")
                .field("kde", kde)
                .field("refresh", &refresh.is_some())
                .finish(),
            Self::Hybrid { hybrid, refresh } => f
                .debug_struct("Hybrid")
                .field("decisions", &hybrid.router().decisions())
                .field("refresh", &refresh.is_some())
                .finish(),
        }
    }
}

impl ServedModel {
    /// Wraps a fixed-bandwidth estimator.
    pub fn fixed(estimator: KdeEstimator) -> Self {
        Self::Static(Box::new(estimator))
    }

    /// Wraps an adaptive estimator without a tuple-refresh source.
    pub fn adaptive(kde: AdaptiveKde) -> Self {
        Self::Adaptive {
            kde: Box::new(kde),
            refresh: None,
        }
    }

    /// Wraps an adaptive estimator with a tuple-refresh source for Karma
    /// replacements.
    pub fn adaptive_with_refresh(kde: AdaptiveKde, refresh: RefreshFn) -> Self {
        Self::Adaptive {
            kde: Box::new(kde),
            refresh: Some(refresh),
        }
    }

    /// Wraps a hybrid (KDE + learned + exact) estimator without a
    /// tuple-refresh source.
    pub fn hybrid(hybrid: HybridEstimator) -> Self {
        Self::Hybrid {
            hybrid: Box::new(hybrid),
            refresh: None,
        }
    }

    /// Wraps a hybrid estimator with a tuple-refresh source for the KDE
    /// member's Karma replacements.
    pub fn hybrid_with_refresh(hybrid: HybridEstimator, refresh: RefreshFn) -> Self {
        Self::Hybrid {
            hybrid: Box::new(hybrid),
            refresh: Some(refresh),
        }
    }

    /// Dimensionality of the estimated column set.
    pub fn dims(&self) -> usize {
        self.estimator().dims()
    }

    /// The underlying KDE model (for hybrid models, the KDE member).
    pub fn estimator(&self) -> &KdeEstimator {
        match self {
            Self::Static(e) => e,
            Self::Adaptive { kde, .. } => kde.model(),
            Self::Hybrid { hybrid, .. } => hybrid.kde().model(),
        }
    }

    /// Serves one batch. Static and adaptive models issue ONE fused
    /// launch for the whole group — per-query results are bit-identical
    /// to sequential `estimate` calls (pinned by tests in `kdesel-kde`
    /// and re-pinned end-to-end in `tests/serve.rs`) — and report no
    /// families. Hybrid models route each query individually and report
    /// which family answered it, for the `serve.request` spans.
    pub(crate) fn estimate_batch(
        &mut self,
        regions: &[Rect],
    ) -> (Vec<f64>, Option<Vec<&'static str>>) {
        match self {
            Self::Static(_) | Self::Adaptive { .. } => {
                (self.estimator().estimate_batch(regions), None)
            }
            Self::Hybrid { hybrid, .. } => {
                let mut estimates = Vec::with_capacity(regions.len());
                let mut families = Vec::with_capacity(regions.len());
                for region in regions {
                    let (estimate, family) = hybrid.estimate_routed(region);
                    estimates.push(estimate);
                    families.push(family.name());
                }
                (estimates, Some(families))
            }
        }
    }

    /// Applies one feedback item off the hot path. For adaptive models
    /// this primes the fused estimate+gradient sweep (Karma consumes the
    /// retained per-point contributions; the tuner reuses the cached
    /// gradient), observes the feedback, then installs replacement tuples
    /// from the refresh source. Returns the installed replacements as
    /// `(slot, row)` pairs, so the worker can count them and the workload
    /// capture can script an identical refresh during replay.
    pub(crate) fn apply_feedback(&mut self, feedback: &QueryFeedback) -> Vec<(usize, Vec<f64>)> {
        match self {
            Self::Static(_) => Vec::new(),
            Self::Adaptive { kde, refresh } => {
                // `estimate_batch` (the serving path) does not retain
                // per-point contributions, so re-run the fused single-query
                // sweep for this region: identical launches and state to
                // the synchronous Listing-1 loop, just off the hot path.
                let _ = SelectivityEstimator::estimate(kde.as_mut(), &feedback.region);
                kde.observe(feedback);
                let mut replaced = Vec::new();
                let flagged = kde.take_pending_replacements();
                if let Some(refresh) = refresh {
                    for index in flagged {
                        if let Some(row) = refresh(index) {
                            kde.replace_point(index, &row);
                            replaced.push((index, row));
                        }
                    }
                }
                replaced
            }
            Self::Hybrid { hybrid, refresh } => {
                // The hybrid observes the feedback itself: the q-error
                // lands in the answering family's rolling window, and the
                // KDE member re-primes + tunes only when it answered.
                hybrid.observe(feedback);
                let mut replaced = Vec::new();
                let flagged = hybrid.take_pending_replacements();
                if let Some(refresh) = refresh {
                    for index in flagged {
                        if let Some(row) = refresh(index) {
                            hybrid.replace_point(index, &row);
                            replaced.push((index, row));
                        }
                    }
                }
                replaced
            }
        }
    }

    /// Captures the model state for warm restart. Hybrid snapshots embed
    /// the router's adaptive state next to the KDE member's.
    pub fn snapshot(&self) -> ModelSnapshot {
        match self {
            Self::Hybrid { hybrid, .. } => hybrid.snapshot(),
            _ => ModelSnapshot::of(self.estimator()),
        }
    }

    /// Replaces the model state with `snapshot`, preserving the backend
    /// and (for adaptive models) the tuning configuration and refresh
    /// source. Warm restart covers the sample and the tuned bandwidth;
    /// transient tuner/Karma state restarts fresh, exactly as the paper's
    /// estimator would after a server restart.
    pub(crate) fn restore_in_place(&mut self, snapshot: &ModelSnapshot) -> Result<(), String> {
        crate::snapshot::validate(snapshot)?;
        if snapshot.dims != self.dims() {
            return Err(format!(
                "snapshot dims {} do not match registered model dims {}",
                snapshot.dims,
                self.dims()
            ));
        }
        let backend = self.estimator().device().backend();
        match self {
            Self::Static(e) => **e = snapshot.restore(Device::new(backend)),
            Self::Adaptive { kde, .. } => {
                let adaptive = kde.adaptive_config().clone();
                let karma = kde.karma_config().clone();
                **kde = AdaptiveKde::from_estimator(
                    snapshot.restore(Device::new(backend)),
                    adaptive,
                    karma,
                );
            }
            Self::Hybrid { hybrid, .. } => hybrid.restore_from_snapshot(snapshot)?,
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdesel_device::Backend;
    use kdesel_kde::{AdaptiveConfig, KarmaConfig, KernelFn};

    fn sample() -> Vec<f64> {
        (0..64).map(|i| (i as f64) * 0.031).collect()
    }

    fn fixed_model() -> ServedModel {
        ServedModel::fixed(KdeEstimator::new(
            Device::new(Backend::CpuSeq),
            &sample(),
            2,
            KernelFn::Gaussian,
        ))
    }

    #[test]
    fn key_display_and_accessors() {
        let key = ModelKey::new("orders", &["price", "qty"]);
        assert_eq!(key.to_string(), "orders(price,qty)");
        assert_eq!(key.table(), "orders");
        assert_eq!(key.columns(), ["price", "qty"]);
    }

    #[test]
    fn file_stem_is_sanitized_and_collision_resistant() {
        let a = ModelKey::new("t/x", &["c.1"]);
        let stem = a.file_stem();
        assert!(
            stem.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-'),
            "unsafe stem {stem:?}"
        );
        // Same sanitized text, different identifiers → different stems.
        let b = ModelKey::new("t.x", &["c/1"]);
        assert_ne!(a.file_stem(), b.file_stem());
        // Column-boundary ambiguity resolved by the separator byte.
        let c = ModelKey::new("t", &["ab", "c"]);
        let d = ModelKey::new("t", &["a", "bc"]);
        assert_ne!(c.file_stem(), d.file_stem());
        // Deterministic.
        assert_eq!(a.file_stem(), ModelKey::new("t/x", &["c.1"]).file_stem());
    }

    #[test]
    fn static_model_ignores_feedback() {
        let mut model = fixed_model();
        let region = Rect::cube(2, 0.0, 1.0);
        let (before, families) = model.estimate_batch(std::slice::from_ref(&region));
        assert!(families.is_none());
        let replaced = model.apply_feedback(&QueryFeedback {
            region: region.clone(),
            estimate: before[0],
            actual: 0.9,
            cardinality: 9,
        });
        assert!(replaced.is_empty());
        assert_eq!(model.estimate_batch(&[region]).0, before);
    }

    #[test]
    fn adaptive_feedback_moves_bandwidth_off_the_hot_path() {
        let kde = AdaptiveKde::new(
            Device::new(Backend::CpuSeq),
            &sample(),
            2,
            KernelFn::Gaussian,
            AdaptiveConfig::default(),
            KarmaConfig::default(),
        );
        let mut model = ServedModel::adaptive(kde);
        let bw_before = model.estimator().bandwidth().to_vec();
        let region = Rect::from_intervals(&[(0.1, 0.9), (0.1, 0.9)]);
        let estimate = model.estimate_batch(std::slice::from_ref(&region)).0[0];
        for _ in 0..AdaptiveConfig::default().mini_batch {
            model.apply_feedback(&QueryFeedback {
                region: region.clone(),
                estimate,
                actual: (estimate + 0.3).min(1.0),
                cardinality: 0,
            });
        }
        assert_ne!(
            model.estimator().bandwidth(),
            bw_before.as_slice(),
            "a full mini-batch of feedback must step the bandwidth"
        );
    }

    #[test]
    fn restore_rejects_dimension_mismatch() {
        let mut model = fixed_model();
        let snapshot = ModelSnapshot {
            sample: vec![0.0, 1.0, 2.0],
            dims: 3,
            kernel: "gaussian".to_string(),
            bandwidth: vec![1.0, 1.0, 1.0],
            router: None,
        };
        let err = model.restore_in_place(&snapshot).unwrap_err();
        assert!(err.contains("dims"), "unexpected error {err:?}");
    }

    #[test]
    fn restore_preserves_backend_and_bandwidth() {
        let mut model = ServedModel::fixed(KdeEstimator::new(
            Device::new(Backend::SimGpu),
            &sample(),
            2,
            KernelFn::Gaussian,
        ));
        let mut snapshot = model.snapshot();
        snapshot.bandwidth = vec![0.25, 0.75];
        model.restore_in_place(&snapshot).unwrap();
        assert_eq!(model.estimator().device().backend(), Backend::SimGpu);
        assert_eq!(model.estimator().bandwidth(), [0.25, 0.75]);
    }
}
