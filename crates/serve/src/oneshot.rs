//! Minimal one-shot channel (std `Mutex` + `Condvar`, no external deps).
//!
//! Each [`EstimateRequest`](crate::worker::EstimateRequest) carries a
//! [`Sender`] back to the caller; the executor thread fulfils it once. A
//! dropped sender wakes the receiver with an error instead of blocking it
//! forever, so a worker that exits mid-queue never strands a caller.

use std::sync::{Arc, Condvar, Mutex};

struct Slot<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
}

struct State<T> {
    value: Option<T>,
    closed: bool,
}

/// Producing half; consumed by [`Sender::send`].
pub struct Sender<T> {
    slot: Option<Arc<Slot<T>>>,
}

/// Consuming half; consumed by [`Receiver::recv`].
pub struct Receiver<T> {
    slot: Arc<Slot<T>>,
}

/// Error returned by [`Receiver::recv`] when the sender was dropped
/// without sending.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Creates a connected sender/receiver pair.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let slot = Arc::new(Slot {
        state: Mutex::new(State {
            value: None,
            closed: false,
        }),
        ready: Condvar::new(),
    });
    (
        Sender {
            slot: Some(Arc::clone(&slot)),
        },
        Receiver { slot },
    )
}

impl<T> Sender<T> {
    /// Delivers `value` and wakes the receiver. If the receiver was
    /// dropped the value is discarded — fire-and-forget by design, so a
    /// worker replying to an abandoned request never errors.
    pub fn send(mut self, value: T) {
        let slot = self.slot.take().expect("send consumes the sender");
        let mut state = slot.state.lock().unwrap();
        state.value = Some(value);
        state.closed = true;
        drop(state);
        slot.ready.notify_one();
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if let Some(slot) = self.slot.take() {
            slot.state.lock().unwrap().closed = true;
            slot.ready.notify_one();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until the value arrives; `Err(RecvError)` if the sender was
    /// dropped without sending.
    pub fn recv(self) -> Result<T, RecvError> {
        let mut state = self.slot.state.lock().unwrap();
        loop {
            if let Some(value) = state.value.take() {
                return Ok(value);
            }
            if state.closed {
                return Err(RecvError);
            }
            state = self.slot.ready.wait(state).unwrap();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_crosses_threads() {
        let (tx, rx) = channel();
        let handle = std::thread::spawn(move || tx.send(42_u64));
        assert_eq!(rx.recv(), Ok(42));
        handle.join().unwrap();
    }

    #[test]
    fn dropped_sender_unblocks_receiver() {
        let (tx, rx) = channel::<u64>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn dropped_receiver_discards_value() {
        let (tx, rx) = channel();
        drop(rx);
        tx.send(7_u64); // must not panic
    }

    #[test]
    fn send_before_recv_is_not_lost() {
        let (tx, rx) = channel();
        tx.send("payload");
        assert_eq!(rx.recv(), Ok("payload"));
    }
}
