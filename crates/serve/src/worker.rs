//! The per-model executor thread: coalescing scheduler, background
//! maintenance, and checkpointing.
//!
//! Each registry entry is owned by exactly one worker thread — no
//! `RwLock` around the estimator, no contention on the hot path. The
//! worker's loop has three priorities:
//!
//! 1. **Serve**: the first queued [`EstimateRequest`] opens a batch; the
//!    scheduler drains companions (up to `max_batch`, waiting at most
//!    `max_wait` for stragglers) and issues ONE fused `estimate_batch`
//!    launch for the group, replying through per-request oneshots.
//! 2. **Maintain**: between batches, apply at most `maintenance_chunk`
//!    queued feedback items (Karma + RMSprop + tuple refresh), so tuning
//!    cost never lands on a caller's critical path.
//! 3. **Checkpoint**: on the periodic deadline, on demand, and on
//!    shutdown, persist a [`ModelSnapshot`](kdesel_kde::ModelSnapshot).
//!
//! Shutdown (explicit message or all senders dropped) drains queued
//! estimates, applies the full feedback backlog, writes a final
//! checkpoint, and exits.

use crate::capture::ModelRecorder;
use crate::config::ServeConfig;
use crate::model::{ModelKey, ServedModel};
use crate::observatory::Observatory;
use crate::oneshot;
use kdesel_device::DeviceStats;
use kdesel_telemetry::{Event, SpanContext};
use kdesel_types::{QueryFeedback, Rect};
use std::collections::VecDeque;
use std::sync::mpsc::{Receiver, RecvTimeoutError, TryRecvError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Measured fused-launch wall times kept for the adaptive batching
/// deadline — enough history to smooth scheduler jitter, short enough to
/// track a model whose per-launch cost drifts (sample growth, backend
/// warm-up).
const LAUNCH_WINDOW: usize = 32;

/// One selectivity probe in flight, tagged with the trace ID minted at
/// the front door.
pub(crate) struct EstimateRequest {
    pub region: Rect,
    pub submitted: Instant,
    pub trace: u64,
    pub reply: oneshot::Sender<f64>,
}

/// Messages a [`ServeHandle`](crate::ServeHandle) sends its worker.
pub(crate) enum Msg {
    Estimate(EstimateRequest),
    Feedback {
        feedback: QueryFeedback,
        /// Trace of the request this feedback answers (0 = untraced).
        trace: u64,
    },
    /// Replied to once the feedback backlog is empty — the barrier
    /// `run_query_via` uses to reproduce strict Listing-1 ordering.
    Flush(oneshot::Sender<()>),
    Checkpoint(oneshot::Sender<Result<(), String>>),
    Report(oneshot::Sender<WorkerReport>),
    Shutdown,
}

/// Point-in-time view of one worker, for tests and operators.
#[derive(Debug, Clone)]
pub struct WorkerReport {
    /// Estimate requests served.
    pub requests: u64,
    /// Fused launches issued; `requests / batches` is the coalescing ratio.
    pub batches: u64,
    /// Largest batch fused so far.
    pub max_batch_seen: usize,
    /// Feedback items applied by the maintenance path.
    pub maintenance_applied: u64,
    /// Sample tuples replaced via the refresh source.
    pub replacements: u64,
    /// Checkpoints written.
    pub checkpoints: u64,
    /// Feedback items still queued.
    pub backlog: usize,
    /// Current bandwidth (moves under adaptive maintenance).
    pub bandwidth: Vec<f64>,
    /// Device transfer/launch counters for the model's device.
    pub device: DeviceStats,
    /// Modeled device-seconds consumed (SimGpu cost model; zero elsewhere).
    pub modeled_seconds: f64,
}

/// Telemetry instruments, resolved once per worker.
struct Meters {
    queue_depth: Arc<kdesel_telemetry::Gauge>,
    backlog_depth: Arc<kdesel_telemetry::Gauge>,
    batch_size: Arc<kdesel_telemetry::Histogram>,
    request_seconds: Arc<kdesel_telemetry::Histogram>,
    requests: Arc<kdesel_telemetry::Counter>,
    batches: Arc<kdesel_telemetry::Counter>,
    coalesced: Arc<kdesel_telemetry::Counter>,
    maintenance: Arc<kdesel_telemetry::Counter>,
    replacements: Arc<kdesel_telemetry::Counter>,
    checkpoints: Arc<kdesel_telemetry::Counter>,
    checkpoint_errors: Arc<kdesel_telemetry::Counter>,
    pool_hit_rate: Arc<kdesel_telemetry::Gauge>,
}

impl Meters {
    fn resolve() -> Self {
        Self {
            queue_depth: kdesel_telemetry::gauge("serve.queue_depth"),
            backlog_depth: kdesel_telemetry::gauge("serve.maintenance_backlog"),
            batch_size: kdesel_telemetry::histogram("serve.batch_size"),
            request_seconds: kdesel_telemetry::histogram("serve.request_seconds"),
            requests: kdesel_telemetry::counter("serve.requests"),
            batches: kdesel_telemetry::counter("serve.batches"),
            coalesced: kdesel_telemetry::counter("serve.coalesced_requests"),
            maintenance: kdesel_telemetry::counter("serve.maintenance_applied"),
            replacements: kdesel_telemetry::counter("serve.replacements"),
            checkpoints: kdesel_telemetry::counter("serve.checkpoints"),
            checkpoint_errors: kdesel_telemetry::counter("serve.checkpoint_errors"),
            pool_hit_rate: kdesel_telemetry::gauge("serve.pool_hit_rate"),
        }
    }
}

pub(crate) struct Worker {
    key: ModelKey,
    model: ServedModel,
    config: ServeConfig,
    rx: Receiver<Msg>,
    backlog: VecDeque<(QueryFeedback, u64)>,
    /// Rolling window of measured fused-launch wall times, feeding the
    /// adaptive straggler deadline (`ServeConfig::adaptive_wait`).
    launch_window: VecDeque<f64>,
    pending_flushes: Vec<oneshot::Sender<()>>,
    meters: Meters,
    observatory: Observatory,
    capture: Option<ModelRecorder>,
    last_checkpoint: Instant,
    shutting_down: bool,
    drained: bool,
    // Lifetime counters mirrored into WorkerReport.
    requests: u64,
    batches: u64,
    max_batch_seen: usize,
    maintenance_applied: u64,
    replacements: u64,
    checkpoints: u64,
}

impl Worker {
    pub(crate) fn new(
        key: ModelKey,
        model: ServedModel,
        config: ServeConfig,
        rx: Receiver<Msg>,
        capture: Option<ModelRecorder>,
    ) -> Self {
        Self {
            observatory: Observatory::new(&key),
            key,
            model,
            config,
            rx,
            backlog: VecDeque::new(),
            launch_window: VecDeque::new(),
            capture,
            pending_flushes: Vec::new(),
            meters: Meters::resolve(),
            last_checkpoint: Instant::now(),
            shutting_down: false,
            drained: false,
            requests: 0,
            batches: 0,
            max_batch_seen: 0,
            maintenance_applied: 0,
            replacements: 0,
            checkpoints: 0,
        }
    }

    /// The executor loop. Returns `Err` only when the final shutdown
    /// checkpoint fails — mid-flight checkpoint errors are reported to the
    /// requester (explicit) or counted (periodic) without killing serving.
    pub(crate) fn run(mut self) -> Result<(), String> {
        loop {
            match self.next_msg() {
                Some(Msg::Estimate(first)) => self.serve_batch(first),
                Some(other) => self.dispatch(other),
                None => {}
            }
            self.run_maintenance(self.config.maintenance_chunk);
            self.settle_flushes();
            self.maybe_periodic_checkpoint();
            if self.drained {
                break;
            }
        }
        // Graceful drain: every queued estimate was already answered (the
        // drain loop above keeps serving until the channel is empty); now
        // finish the backlog and persist.
        self.run_maintenance(usize::MAX);
        self.settle_flushes();
        if self.config.checkpoint.is_some() {
            self.checkpoint_now()
                .map_err(|e| format!("final checkpoint for {}: {e}", self.key))?;
        }
        Ok(())
    }

    /// Pulls the next message. Blocks only when there is nothing else to
    /// do; with a backlog pending (or during shutdown) it polls so the
    /// loop can fall through to maintenance / drain.
    fn next_msg(&mut self) -> Option<Msg> {
        if self.shutting_down || !self.backlog.is_empty() {
            return match self.rx.try_recv() {
                Ok(msg) => Some(msg),
                Err(TryRecvError::Empty) => {
                    if self.shutting_down {
                        self.drained = true;
                    }
                    None
                }
                Err(TryRecvError::Disconnected) => {
                    self.shutting_down = true;
                    self.drained = true;
                    None
                }
            };
        }
        let timeout = self
            .until_next_checkpoint()
            .unwrap_or(Duration::from_millis(50));
        match self.rx.recv_timeout(timeout) {
            Ok(msg) => Some(msg),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => {
                self.shutting_down = true;
                self.drained = true;
                None
            }
        }
    }

    fn dispatch(&mut self, msg: Msg) {
        match msg {
            Msg::Estimate(first) => self.serve_batch(first),
            Msg::Feedback { feedback, trace } => self.backlog.push_back((feedback, trace)),
            Msg::Flush(reply) => self.pending_flushes.push(reply),
            Msg::Checkpoint(reply) => reply.send(self.checkpoint_now()),
            Msg::Report(reply) => reply.send(self.report()),
            Msg::Shutdown => self.shutting_down = true,
        }
    }

    /// Rolling median of this worker's measured fused-launch wall times;
    /// the adaptive policy's estimate of "what one more launch costs".
    fn launch_p50(&self) -> Option<f64> {
        if self.launch_window.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = self.launch_window.iter().copied().collect();
        sorted.sort_by(f64::total_cmp);
        Some(sorted[sorted.len() / 2])
    }

    /// How long the gatherer may wait for ONE more straggler:
    /// `clamp(fraction × launch_p50, min_wait, remaining)` under the
    /// adaptive policy, the whole remaining window under the fixed one.
    fn straggler_gap(&self, remaining: Duration) -> Duration {
        let Some(adaptive) = &self.config.adaptive_wait else {
            return remaining;
        };
        let launch = self
            .launch_p50()
            .or(adaptive.seed_launch_seconds)
            .unwrap_or(0.0);
        Duration::from_secs_f64(adaptive.fraction * launch)
            .max(adaptive.min_wait)
            .min(remaining)
    }

    /// Opens a batch with `first`, gathers companions under the
    /// max-batch/max-wait policy (per-straggler deadline when
    /// `adaptive_wait` is set), and serves the group with one fused
    /// launch.
    fn serve_batch(&mut self, first: EstimateRequest) {
        let mut batch = vec![first];
        let deadline = Instant::now() + self.config.max_wait;
        while batch.len() < self.config.max_batch {
            match self.rx.try_recv() {
                Ok(Msg::Estimate(req)) => batch.push(req),
                Ok(other) => self.dispatch_non_estimate(other),
                Err(TryRecvError::Disconnected) => {
                    self.shutting_down = true;
                    break;
                }
                Err(TryRecvError::Empty) => {
                    if self.shutting_down {
                        break; // no new producers can appear
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    match self.rx.recv_timeout(self.straggler_gap(deadline - now)) {
                        Ok(Msg::Estimate(req)) => batch.push(req),
                        Ok(other) => self.dispatch_non_estimate(other),
                        Err(RecvTimeoutError::Timeout) => break,
                        Err(RecvTimeoutError::Disconnected) => {
                            self.shutting_down = true;
                            break;
                        }
                    }
                }
            }
        }

        let regions: Vec<Rect> = batch.iter().map(|r| r.region.clone()).collect();
        let traced = kdesel_telemetry::tracing() || self.capture.is_some();
        let stats_before = traced.then(|| self.model.estimator().device().stats());
        let started = Instant::now();
        let (estimates, families) = self.model.estimate_batch(&regions);
        let launch_seconds = started.elapsed().as_secs_f64();
        self.launch_window.push_back(launch_seconds);
        if self.launch_window.len() > LAUNCH_WINDOW {
            self.launch_window.pop_front();
        }
        self.batches += 1;
        self.requests += batch.len() as u64;
        self.max_batch_seen = self.max_batch_seen.max(batch.len());
        if let Some(before) = stats_before {
            let device = self.model.estimator().device();
            let launch_stats = device.stats().since(&before);
            let profile = device.profile();
            self.emit_request_spans(
                &batch,
                &estimates,
                families.as_deref(),
                launch_seconds,
                &launch_stats,
                &profile,
            );
        }
        if kdesel_telemetry::enabled() {
            self.meters.batches.inc();
            self.meters.requests.add(batch.len() as u64);
            if batch.len() > 1 {
                self.meters.coalesced.add(batch.len() as u64 - 1);
            }
            self.meters.batch_size.record(batch.len() as f64);
            self.meters.queue_depth.add(-(batch.len() as f64));
            for req in &batch {
                self.meters
                    .request_seconds
                    .record(req.submitted.elapsed().as_secs_f64());
            }
            let stats = self.model.estimator().device().stats();
            let lookups = stats.pool_hits + stats.pool_misses;
            if lookups > 0 {
                self.meters
                    .pool_hit_rate
                    .set(stats.pool_hits as f64 / lookups as f64);
            }
        }
        for (req, estimate) in batch.into_iter().zip(estimates) {
            req.reply.send(estimate);
        }
    }

    /// `serve_batch`'s sieve: everything that is not an estimate keeps its
    /// usual handling while a batch is being gathered.
    fn dispatch_non_estimate(&mut self, msg: Msg) {
        debug_assert!(!matches!(msg, Msg::Estimate(_)));
        self.dispatch(msg);
    }

    /// Routes one span event to the workload capture (always, when
    /// configured) and to the global telemetry sink (when tracing).
    fn emit(&self, event: Event) {
        if let Some(capture) = &self.capture {
            capture.recorder.record(event.clone());
        }
        kdesel_telemetry::emit_event(event);
    }

    /// Stamps each event with the capture-internal model ID when a
    /// capture is active (trace-only events identify the model by key).
    fn tag_model(&self, event: Event) -> Event {
        match &self.capture {
            Some(capture) => event.u64("m", capture.id),
            None => event.str("model", self.key.to_string()),
        }
    }

    /// Emits the per-request span trees for one fused launch: for every
    /// request in the batch, a `serve.request` root span, a `serve.batch`
    /// child recording how the scheduler grouped it, and a `serve.launch`
    /// grandchild carrying the device-side cost of the shared launch.
    fn emit_request_spans(
        &self,
        batch: &[EstimateRequest],
        estimates: &[f64],
        families: Option<&[&'static str]>,
        launch_seconds: f64,
        launch_stats: &DeviceStats,
        profile: &kdesel_device::DeviceProfile,
    ) {
        for (i, (req, &estimate)) in batch.iter().zip(estimates).enumerate() {
            let root = SpanContext::root_of(req.trace);
            let mut request = self
                .tag_model(Event::new("serve.request").ctx(&root))
                .f64_slice("lo", req.region.lo())
                .f64_slice("hi", req.region.hi())
                .f64("estimate", estimate)
                .f64("wait_s", req.submitted.elapsed().as_secs_f64());
            if let Some(families) = families {
                request = request.str("family", families[i]);
            }
            self.emit(request);
            let group = self.model.estimator().group().map(|g| (g.len(), g.stats()));
            let batch_span = root.child();
            self.emit(
                Event::new("serve.batch")
                    .ctx(&batch_span)
                    .u64("seq", self.batches)
                    .u64("size", batch.len() as u64),
            );
            self.emit({
                let mut launch = Event::new("serve.launch")
                    .ctx(&batch_span.child())
                    .f64("launch_s", launch_seconds)
                    .u64("kernels", launch_stats.kernels)
                    .u64("uploads", launch_stats.uploads)
                    .u64("bytes_up", launch_stats.bytes_up)
                    .u64("downloads", launch_stats.downloads)
                    .u64("bytes_down", launch_stats.bytes_down)
                    .u64("pool_hits", launch_stats.pool_hits)
                    .u64("pool_misses", launch_stats.pool_misses)
                    .f64("kernel_p50_s", profile.kernel_p50_ceiling())
                    .f64("kernel_p95_s", profile.kernel_p95_ceiling());
                if let Some((devices, ref gs)) = group {
                    launch = launch
                        .u64("group_devices", devices as u64)
                        .u64("group_steals", gs.steals)
                        .u64("group_blocks", gs.blocks_executed)
                        .f64("group_imbalance", gs.imbalance);
                }
                launch
            });
        }
    }

    fn run_maintenance(&mut self, limit: usize) {
        for _ in 0..limit {
            let Some((feedback, trace)) = self.backlog.pop_front() else {
                break;
            };
            let replaced = self.model.apply_feedback(&feedback);
            self.maintenance_applied += 1;
            self.replacements += replaced.len() as u64;
            if kdesel_telemetry::tracing() || self.capture.is_some() {
                let mut slots = String::new();
                let mut rows = Vec::new();
                for (slot, row) in &replaced {
                    if !slots.is_empty() {
                        slots.push(' ');
                    }
                    slots.push_str(&slot.to_string());
                    rows.extend_from_slice(row);
                }
                self.emit(
                    self.tag_model(
                        Event::new("serve.feedback").ctx(&SpanContext::root_of(trace).child()),
                    )
                    .f64_slice("lo", feedback.region.lo())
                    .f64_slice("hi", feedback.region.hi())
                    .f64("estimate", feedback.estimate)
                    .f64("actual", feedback.actual)
                    .u64("cardinality", feedback.cardinality)
                    .str("slots", slots)
                    .f64_slice("rows", &rows),
                );
            }
            if kdesel_telemetry::enabled() {
                self.meters.maintenance.inc();
                self.meters.replacements.add(replaced.len() as u64);
                let bandwidth = self.model.estimator().bandwidth().to_vec();
                self.observatory
                    .observe(&feedback, &bandwidth, replaced.len());
            }
        }
        if kdesel_telemetry::enabled() {
            self.meters.backlog_depth.set(self.backlog.len() as f64);
        }
    }

    /// Answers pending flush barriers once the backlog is empty.
    fn settle_flushes(&mut self) {
        if self.backlog.is_empty() {
            for reply in self.pending_flushes.drain(..) {
                reply.send(());
            }
        }
    }

    fn checkpoint_now(&mut self) -> Result<(), String> {
        let Some(policy) = &self.config.checkpoint else {
            return Err("no checkpoint directory configured".to_string());
        };
        let snapshot = self.model.snapshot();
        crate::snapshot::write_atomic(&policy.dir, &self.key, &snapshot)?;
        self.checkpoints += 1;
        self.last_checkpoint = Instant::now();
        if kdesel_telemetry::enabled() {
            self.meters.checkpoints.inc();
        }
        Ok(())
    }

    fn maybe_periodic_checkpoint(&mut self) {
        let due = self
            .config
            .checkpoint
            .as_ref()
            .and_then(|p| p.every)
            .is_some_and(|every| self.last_checkpoint.elapsed() >= every);
        if due && self.checkpoint_now().is_err() && kdesel_telemetry::enabled() {
            self.meters.checkpoint_errors.inc();
        }
    }

    fn until_next_checkpoint(&self) -> Option<Duration> {
        let every = self.config.checkpoint.as_ref()?.every?;
        Some(every.saturating_sub(self.last_checkpoint.elapsed()))
    }

    fn report(&self) -> WorkerReport {
        let device = self.model.estimator().device();
        WorkerReport {
            requests: self.requests,
            batches: self.batches,
            max_batch_seen: self.max_batch_seen,
            maintenance_applied: self.maintenance_applied,
            replacements: self.replacements,
            checkpoints: self.checkpoints,
            backlog: self.backlog.len(),
            bandwidth: self.model.estimator().bandwidth().to_vec(),
            device: device.stats(),
            modeled_seconds: device.modeled_seconds(),
        }
    }
}

impl WorkerReport {
    /// Requests served per fused launch (1.0 = no coalescing).
    pub fn coalescing_ratio(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.requests as f64 / self.batches as f64
        }
    }
}
