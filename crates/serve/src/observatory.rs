//! The accuracy-drift observatory: per-model online quality metrics.
//!
//! The paper's self-tuning claim (§4, Figure 8) is that feedback drives
//! the model *toward* the live workload; the observatory is how an
//! operator checks that on a deployed service. Every applied feedback
//! item yields one q-error observation — the standard multiplicative
//! error `max(p̂/p, p/p̂)` (smoothed like the paper's loss functions,
//! footnote 6) — tracked two ways per model:
//!
//! * a log-linear **histogram** (`serve.model.<label>.qerror`) over the
//!   model's lifetime, and
//! * **rolling-window gauges** (`…qerror_p50` / `p95` / `p99`) over the
//!   most recent [`WINDOW`] items, which is what reveals *drift*: the
//!   lifetime histogram stays flattering long after a workload shift,
//!   the window percentiles do not.
//!
//! Alongside accuracy, the observatory tracks the self-tuning machinery
//! itself: the bandwidth-vector L2 norm (`…bandwidth_l2`, the trajectory
//! RMSprop is steering) and Karma activity (`…feedback_total`,
//! `…replacements_total`). All metrics live in the global telemetry
//! registry, so they appear in `--metrics` tables and in the
//! Prometheus-style exposition snapshot.

use crate::model::ModelKey;
use kdesel_types::{QueryFeedback, QERROR_SMOOTHING};
use std::collections::VecDeque;
use std::sync::Arc;

/// Rolling-window length for the drift percentiles.
pub const WINDOW: usize = 256;

/// Multiplicative q-error between an estimate and the observed truth,
/// smoothed so empty regions stay finite: `max((λ+p̂)/(λ+p), (λ+p)/(λ+p̂))`.
pub fn qerror(estimate: f64, actual: f64) -> f64 {
    let e = QERROR_SMOOTHING + estimate.max(0.0);
    let a = QERROR_SMOOTHING + actual.max(0.0);
    (e / a).max(a / e)
}

/// Per-model accuracy tracker, owned by the model's executor thread.
#[derive(Debug)]
pub(crate) struct Observatory {
    window: VecDeque<f64>,
    qerror_hist: Arc<kdesel_telemetry::Histogram>,
    p50: Arc<kdesel_telemetry::Gauge>,
    p95: Arc<kdesel_telemetry::Gauge>,
    p99: Arc<kdesel_telemetry::Gauge>,
    bandwidth_l2: Arc<kdesel_telemetry::Gauge>,
    feedback_total: Arc<kdesel_telemetry::Counter>,
    replacements_total: Arc<kdesel_telemetry::Counter>,
}

impl Observatory {
    pub(crate) fn new(key: &ModelKey) -> Self {
        let label = key.metric_label();
        let metric = |suffix: &str| format!("serve.model.{label}.{suffix}");
        Self {
            window: VecDeque::with_capacity(WINDOW),
            qerror_hist: kdesel_telemetry::histogram(&metric("qerror")),
            p50: kdesel_telemetry::gauge(&metric("qerror_p50")),
            p95: kdesel_telemetry::gauge(&metric("qerror_p95")),
            p99: kdesel_telemetry::gauge(&metric("qerror_p99")),
            bandwidth_l2: kdesel_telemetry::gauge(&metric("bandwidth_l2")),
            feedback_total: kdesel_telemetry::counter(&metric("feedback_total")),
            replacements_total: kdesel_telemetry::counter(&metric("replacements_total")),
        }
    }

    /// Folds one applied feedback item (and the post-update model state)
    /// into the metrics. Call gated on `kdesel_telemetry::enabled()` —
    /// the window percentile refresh sorts up to [`WINDOW`] floats.
    pub(crate) fn observe(&mut self, feedback: &QueryFeedback, bandwidth: &[f64], replaced: usize) {
        let q = qerror(feedback.estimate, feedback.actual);
        self.qerror_hist.record(q);
        if self.window.len() == WINDOW {
            self.window.pop_front();
        }
        self.window.push_back(q);
        let mut sorted: Vec<f64> = self.window.iter().copied().collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("q-errors are finite"));
        let rank = |p: f64| {
            let idx = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
            sorted[idx]
        };
        self.p50.set(rank(0.5));
        self.p95.set(rank(0.95));
        self.p99.set(rank(0.99));
        self.bandwidth_l2
            .set(bandwidth.iter().map(|h| h * h).sum::<f64>().sqrt());
        self.feedback_total.inc();
        self.replacements_total.add(replaced as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdesel_types::Rect;

    fn feedback(estimate: f64, actual: f64) -> QueryFeedback {
        QueryFeedback {
            region: Rect::cube(1, 0.0, 1.0),
            estimate,
            actual,
            cardinality: 0,
        }
    }

    #[test]
    fn qerror_is_symmetric_and_at_least_one() {
        assert_eq!(qerror(0.5, 0.5), 1.0);
        let over = qerror(0.4, 0.1);
        let under = qerror(0.1, 0.4);
        assert_eq!(over, under);
        assert!((over - 4.0).abs() < 1e-4, "≈4x error, got {over}");
        // Empty regions stay finite thanks to smoothing.
        assert!(qerror(0.3, 0.0).is_finite());
        assert!(qerror(0.0, 0.0) >= 1.0);
    }

    #[test]
    fn window_percentiles_track_recent_accuracy() {
        kdesel_telemetry::registry().clear();
        let key = ModelKey::new("obs_test", &["x"]);
        let mut obs = Observatory::new(&key);
        // Accurate phase: q ≈ 1.
        for _ in 0..WINDOW {
            obs.observe(&feedback(0.2, 0.2), &[1.0, 2.0], 0);
        }
        let p99_before = kdesel_telemetry::gauge("serve.model.obs_test_x.qerror_p99").get();
        assert!(p99_before < 1.01, "accurate phase p99 {p99_before}");
        // Drift: the estimator is now 5x off. The window must notice.
        for _ in 0..WINDOW {
            obs.observe(&feedback(0.5, 0.1), &[1.0, 2.0], 1);
        }
        let p50 = kdesel_telemetry::gauge("serve.model.obs_test_x.qerror_p50").get();
        assert!((p50 - 5.0).abs() < 0.01, "drifted p50 {p50}");
        let l2 = kdesel_telemetry::gauge("serve.model.obs_test_x.bandwidth_l2").get();
        assert!((l2 - 5.0f64.sqrt()).abs() < 1e-12);
        assert_eq!(
            kdesel_telemetry::registry()
                .counter("serve.model.obs_test_x.feedback_total")
                .get(),
            2 * WINDOW as u64
        );
        assert_eq!(
            kdesel_telemetry::registry()
                .counter("serve.model.obs_test_x.replacements_total")
                .get(),
            WINDOW as u64
        );
    }
}
