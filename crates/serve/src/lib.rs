//! `kdesel-serve`: a concurrent estimator service with request
//! coalescing, background maintenance, and warm-restart snapshots.
//!
//! The paper's estimator lives inside a query optimizer that answers many
//! concurrent selectivity probes; this crate provides the serving layer
//! the synchronous `engine::session` loop lacks — built entirely on std
//! threads and channels (zero external dependencies):
//!
//! ```text
//!  callers (any thread)                 one executor thread per model
//!  ────────────────────                 ─────────────────────────────
//!  ServeHandle::estimate ──┐
//!  ServeHandle::submit  ───┼─ mpsc ──▶ coalescing scheduler
//!  ServeHandle::feedback ──┘             │  drain ≤ max_batch, wait ≤ max_wait
//!                                        ▼
//!                                      ONE fused estimate_batch launch
//!                                        │  per-request oneshot replies
//!                                        ▼
//!                                      maintenance (between batches)
//!                                        │  Karma + RMSprop + tuple refresh
//!                                        ▼
//!                                      checkpointer (periodic / shutdown)
//!                                           ModelSnapshot JSON on disk
//! ```
//!
//! * **Registry** — [`ModelKey`] (table, column set) → [`ServedModel`].
//!   Each entry is owned by exactly one executor thread: no locks around
//!   the estimator, and the device command stream per model stays
//!   single-threaded (see the thread-ownership contract in
//!   `kdesel-device`'s crate docs).
//! * **Coalescing scheduler** — concurrent submissions fuse into one
//!   `estimate_batch` launch (bit-identical per query to sequential
//!   `estimate` calls), amortizing per-launch latency exactly as the
//!   paper's GPU offloading amortizes transfer cost.
//! * **Background maintenance** — true-selectivity feedback queues into a
//!   backlog applied between batches: serving latency never pays the
//!   Karma/RMSprop tuning cost. [`ServeHandle::flush`] is a barrier for
//!   callers that need strict Listing-1 ordering
//!   (`engine::session::run_query_via` uses it).
//! * **Warm restart** — periodic, on-demand, and on-shutdown
//!   [`ModelSnapshot`](kdesel_kde::ModelSnapshot) JSON checkpoints per
//!   registry entry, restored on the next [`ServiceBuilder::build`].
//! * **Observability** — every request carries a trace ID minted at the
//!   front door ([`ServeHandle::submit`]); workers emit a
//!   `serve.request → serve.batch → serve.launch` span tree per traced
//!   request (plus a `serve.feedback` child when the loop closes), an
//!   optional JSONL workload capture ([`ServeConfig::capture`]) replays
//!   bit-for-bit through [`replay`], and the per-model q-error drift
//!   gauges of [`observatory`] feed a Prometheus-style exposition
//!   ([`ServeHandle::prometheus`]).
//!
//! Latency-vs-throughput knobs live in [`ServeConfig`]; instrumentation
//! (queue-depth gauge, batch-size and end-to-end latency histograms,
//! coalescing-ratio counters) is registered under `serve.*` in
//! `kdesel-telemetry`.

pub mod capture;
pub mod config;
pub mod model;
pub mod observatory;
mod oneshot;
pub mod replay;
pub mod service;
pub mod snapshot;
mod worker;

pub use config::{AdaptiveWaitConfig, CheckpointPolicy, ServeConfig};
pub use model::{ModelKey, RefreshFn, ServedModel};
pub use replay::{Capture, ReplayOutcome, ReplaySpeed};
pub use service::{PendingEstimate, ServeError, ServeHandle, Service, ServiceBuilder};
pub use worker::WorkerReport;

/// Compile-time audit of the thread contract this crate relies on (the
/// satellite of the `Send`/`Sync` audit documented in `kdesel-device`):
/// estimators move onto executor threads, handles are shared everywhere.
#[allow(dead_code)]
fn thread_contract_audit() {
    fn moves_onto_executor_thread<T: Send>() {}
    fn shared_across_threads<T: Send + Sync>() {}
    moves_onto_executor_thread::<kdesel_kde::KdeEstimator>();
    moves_onto_executor_thread::<kdesel_kde::AdaptiveKde>();
    moves_onto_executor_thread::<ServedModel>();
    shared_across_threads::<kdesel_device::Device>();
    shared_across_threads::<kdesel_device::DeviceBuffer>();
    shared_across_threads::<ServeHandle>();
    shared_across_threads::<Service>();
}
