//! The service: registry construction, executor-thread lifecycle, and the
//! cloneable [`ServeHandle`] callers use from any thread.

use crate::capture::{ModelRecorder, Recorder};
use crate::config::ServeConfig;
use crate::model::{ModelKey, ServedModel};
use crate::oneshot;
use crate::worker::{EstimateRequest, Msg, Worker, WorkerReport};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::mpsc::{self, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Errors surfaced to service callers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The key was never registered.
    UnknownModel(String),
    /// The submitted region's dimensionality does not match the model's.
    DimensionMismatch {
        /// The registered model's dimensionality.
        expected: usize,
        /// The submitted region's dimensionality.
        got: usize,
    },
    /// The executor thread is gone (service shut down or worker died).
    Disconnected(String),
    /// Snapshot persistence failed (IO, malformed JSON, invalid contents).
    Snapshot(String),
    /// The same key was registered twice.
    DuplicateModel(String),
    /// Invalid [`ServeConfig`].
    Config(String),
    /// Workload capture or metrics-dump IO failed.
    Capture(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownModel(key) => write!(f, "no model registered for {key}"),
            Self::DimensionMismatch { expected, got } => {
                write!(f, "region has {got} dims, model expects {expected}")
            }
            Self::Disconnected(key) => write!(f, "serving thread for {key} is gone"),
            Self::Snapshot(what) => write!(f, "snapshot error: {what}"),
            Self::DuplicateModel(key) => write!(f, "model {key} registered twice"),
            Self::Config(what) => write!(f, "invalid serve config: {what}"),
            Self::Capture(what) => write!(f, "capture error: {what}"),
        }
    }
}

impl std::error::Error for ServeError {}

struct Port {
    tx: Sender<Msg>,
    dims: usize,
}

/// Cloneable, thread-safe entry point: resolves a [`ModelKey`] and talks
/// to that model's executor thread over its channel.
#[derive(Clone)]
pub struct ServeHandle {
    ports: Arc<BTreeMap<ModelKey, Port>>,
    queue_depth: Arc<kdesel_telemetry::Gauge>,
}

/// An in-flight estimate submitted with [`ServeHandle::submit`]; redeem
/// with [`PendingEstimate::wait`].
#[must_use = "a pending estimate does nothing until waited on"]
pub struct PendingEstimate {
    rx: oneshot::Receiver<f64>,
    key: String,
    trace: u64,
}

impl PendingEstimate {
    /// The trace ID minted for this request at submission. Pass it to
    /// [`ServeHandle::feedback_traced`] so the eventual feedback joins
    /// this request's span tree.
    pub fn trace(&self) -> u64 {
        self.trace
    }

    /// Blocks until the batch containing this request is served.
    pub fn wait(self) -> Result<f64, ServeError> {
        self.rx
            .recv()
            .map_err(|_| ServeError::Disconnected(self.key))
    }
}

impl ServeHandle {
    fn port(&self, key: &ModelKey) -> Result<&Port, ServeError> {
        self.ports
            .get(key)
            .ok_or_else(|| ServeError::UnknownModel(key.to_string()))
    }

    /// Registered keys, in sorted order.
    pub fn keys(&self) -> Vec<ModelKey> {
        self.ports.keys().cloned().collect()
    }

    /// Dimensionality of the model registered under `key`.
    pub fn dims(&self, key: &ModelKey) -> Result<usize, ServeError> {
        Ok(self.port(key)?.dims)
    }

    /// Enqueues an estimate without blocking; the scheduler may fuse it
    /// with concurrent submissions into one launch. A fresh trace ID is
    /// minted here — the service's front door — and rides with the
    /// request through batching, launch, and (via
    /// [`feedback_traced`](Self::feedback_traced)) feedback application.
    pub fn submit(
        &self,
        key: &ModelKey,
        region: &kdesel_types::Rect,
    ) -> Result<PendingEstimate, ServeError> {
        let port = self.port(key)?;
        if region.dims() != port.dims {
            return Err(ServeError::DimensionMismatch {
                expected: port.dims,
                got: region.dims(),
            });
        }
        let (reply, rx) = oneshot::channel();
        let telemetry = kdesel_telemetry::enabled();
        if telemetry {
            self.queue_depth.add(1.0);
        }
        let trace = kdesel_telemetry::next_trace_id();
        let sent = port.tx.send(Msg::Estimate(EstimateRequest {
            region: region.clone(),
            submitted: Instant::now(),
            trace,
            reply,
        }));
        if sent.is_err() {
            if telemetry {
                self.queue_depth.add(-1.0);
            }
            return Err(ServeError::Disconnected(key.to_string()));
        }
        Ok(PendingEstimate {
            rx,
            key: key.to_string(),
            trace,
        })
    }

    /// Synchronous estimate: submit and wait.
    pub fn estimate(&self, key: &ModelKey, region: &kdesel_types::Rect) -> Result<f64, ServeError> {
        self.submit(key, region)?.wait()
    }

    /// Queues true-selectivity feedback for background maintenance. Never
    /// blocks on model work — the executor applies it between batches.
    /// The feedback is untraced; to tie it to the request it answers, use
    /// [`feedback_traced`](Self::feedback_traced).
    pub fn feedback(
        &self,
        key: &ModelKey,
        feedback: kdesel_types::QueryFeedback,
    ) -> Result<(), ServeError> {
        self.feedback_traced(key, feedback, 0)
    }

    /// Like [`feedback`](Self::feedback), but joins the span tree of the
    /// request whose trace ID is `trace` (from
    /// [`PendingEstimate::trace`]), closing the loop the paper's §4
    /// feedback cycle describes: the `serve.feedback` span becomes a
    /// child of that request's root span.
    pub fn feedback_traced(
        &self,
        key: &ModelKey,
        feedback: kdesel_types::QueryFeedback,
        trace: u64,
    ) -> Result<(), ServeError> {
        let port = self.port(key)?;
        if feedback.region.dims() != port.dims {
            return Err(ServeError::DimensionMismatch {
                expected: port.dims,
                got: feedback.region.dims(),
            });
        }
        port.tx
            .send(Msg::Feedback { feedback, trace })
            .map_err(|_| ServeError::Disconnected(key.to_string()))
    }

    /// Blocks until all feedback queued before this call has been applied
    /// — the barrier that makes serving a strict drop-in for the
    /// synchronous estimate→execute→observe loop.
    pub fn flush(&self, key: &ModelKey) -> Result<(), ServeError> {
        let (reply, rx) = oneshot::channel();
        self.port(key)?
            .tx
            .send(Msg::Flush(reply))
            .map_err(|_| ServeError::Disconnected(key.to_string()))?;
        rx.recv()
            .map_err(|_| ServeError::Disconnected(key.to_string()))
    }

    /// Writes a checkpoint now (requires a configured checkpoint policy).
    pub fn checkpoint(&self, key: &ModelKey) -> Result<(), ServeError> {
        let (reply, rx) = oneshot::channel();
        self.port(key)?
            .tx
            .send(Msg::Checkpoint(reply))
            .map_err(|_| ServeError::Disconnected(key.to_string()))?;
        rx.recv()
            .map_err(|_| ServeError::Disconnected(key.to_string()))?
            .map_err(ServeError::Snapshot)
    }

    /// Renders the current telemetry registry as a Prometheus-style text
    /// exposition — the observatory's on-demand snapshot (per-model
    /// q-error quantiles, bandwidth gauges, scheduler histograms).
    pub fn prometheus(&self) -> String {
        kdesel_telemetry::prometheus_text(kdesel_telemetry::registry())
    }

    /// Snapshots the worker's counters and model state.
    pub fn report(&self, key: &ModelKey) -> Result<WorkerReport, ServeError> {
        let (reply, rx) = oneshot::channel();
        self.port(key)?
            .tx
            .send(Msg::Report(reply))
            .map_err(|_| ServeError::Disconnected(key.to_string()))?;
        rx.recv()
            .map_err(|_| ServeError::Disconnected(key.to_string()))
    }
}

/// Builder: register models, then [`build`](ServiceBuilder::build) to
/// restore snapshots and spawn the executor threads.
pub struct ServiceBuilder {
    config: ServeConfig,
    models: Vec<(ModelKey, ServedModel)>,
}

impl ServiceBuilder {
    /// Starts a builder with the given knobs.
    pub fn new(config: ServeConfig) -> Self {
        Self {
            config,
            models: Vec::new(),
        }
    }

    /// Registers `model` under `key`. Duplicate keys fail at build time.
    pub fn register(mut self, key: ModelKey, model: ServedModel) -> Self {
        self.models.push((key, model));
        self
    }

    /// Validates the configuration, restores snapshots (when the policy
    /// asks for it), opens the workload capture (when configured — model
    /// records reflect post-restore state), and spawns one executor
    /// thread per model.
    pub fn build(mut self) -> Result<Service, ServeError> {
        self.config.validate().map_err(ServeError::Config)?;
        for i in 0..self.models.len() {
            let (before, rest) = self.models.split_at_mut(i);
            let (key, model) = &mut rest[0];
            if before.iter().any(|(other, _)| other == key) {
                return Err(ServeError::DuplicateModel(key.to_string()));
            }
            if let Some(policy) = &self.config.checkpoint {
                if policy.restore {
                    match crate::snapshot::load(&policy.dir, key) {
                        Ok(Some(snapshot)) => model
                            .restore_in_place(&snapshot)
                            .map_err(|e| ServeError::Snapshot(format!("{key}: {e}")))?,
                        Ok(None) => {}
                        Err(e) => return Err(ServeError::Snapshot(format!("{key}: {e}"))),
                    }
                }
            }
        }
        let recorder = match &self.config.capture {
            Some(path) => Some(Arc::new(
                Recorder::create(path, &self.models).map_err(ServeError::Capture)?,
            )),
            None => None,
        };
        let mut ports = BTreeMap::new();
        let mut workers = Vec::with_capacity(self.models.len());
        for (key, model) in self.models {
            let (tx, rx) = mpsc::channel();
            let dims = model.dims();
            let capture = recorder.as_ref().map(|recorder| ModelRecorder {
                id: recorder.model_id(&key),
                recorder: Arc::clone(recorder),
            });
            let worker = Worker::new(key.clone(), model, self.config.clone(), rx, capture);
            let thread = std::thread::Builder::new()
                .name(format!("kdesel-serve:{key}"))
                .spawn(move || worker.run())
                .expect("spawning executor thread");
            ports.insert(key.clone(), Port { tx, dims });
            workers.push((key, thread));
        }
        Ok(Service {
            handle: ServeHandle {
                ports: Arc::new(ports),
                queue_depth: kdesel_telemetry::gauge("serve.queue_depth"),
            },
            workers,
            recorder,
            metrics_dump: self.config.metrics_dump,
        })
    }
}

/// A running service. Owns the executor threads; dropping it performs a
/// best-effort graceful shutdown (prefer [`Service::shutdown`] to see
/// errors).
pub struct Service {
    handle: ServeHandle,
    workers: Vec<(ModelKey, JoinHandle<Result<(), String>>)>,
    recorder: Option<Arc<Recorder>>,
    metrics_dump: Option<std::path::PathBuf>,
}

impl Service {
    /// Starts a builder with the given knobs.
    pub fn builder(config: ServeConfig) -> ServiceBuilder {
        ServiceBuilder::new(config)
    }

    /// A cloneable handle; share freely across producer threads.
    pub fn handle(&self) -> ServeHandle {
        self.handle.clone()
    }

    /// Graceful shutdown: each worker drains queued estimates, applies its
    /// full feedback backlog, writes a final checkpoint (when configured),
    /// and exits. Returns the first failure, if any.
    pub fn shutdown(mut self) -> Result<(), ServeError> {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> Result<(), ServeError> {
        for port in self.handle.ports.values() {
            let _ = port.tx.send(Msg::Shutdown);
        }
        let mut first_err = None;
        for (key, thread) in self.workers.drain(..) {
            let outcome = match thread.join() {
                Ok(Ok(())) => None,
                Ok(Err(e)) => Some(ServeError::Snapshot(e)),
                Err(_) => Some(ServeError::Disconnected(format!("{key}: worker panicked"))),
            };
            if first_err.is_none() {
                first_err = outcome;
            }
        }
        // All workers have exited: the capture is complete, seal it.
        if let Some(recorder) = self.recorder.take() {
            recorder.finish();
        }
        if let Some(path) = self.metrics_dump.take() {
            let text = kdesel_telemetry::prometheus_text(kdesel_telemetry::registry());
            let written = std::fs::write(&path, text)
                .map_err(|e| ServeError::Capture(format!("writing {}: {e}", path.display())));
            if let (None, Err(e)) = (&first_err, written) {
                first_err = Some(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            let _ = self.shutdown_inner();
        }
    }
}
