//! Dataset generators.

pub mod bike;
pub mod forest;
pub mod power;
pub mod protein;
pub mod synthetic;

use kdesel_storage::Table;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The evaluation datasets of paper §6.1.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dataset {
    /// Washington DC bike-sharing usage (17,379 × 16 continuous attrs).
    Bike,
    /// US forest cover-type survey (581,012 × 10 continuous attrs).
    Forest,
    /// Household electric power consumption (2,075,259 × 9 attrs,
    /// mixed continuous/discrete).
    Power,
    /// Protein tertiary-structure physiochemistry (45,730 × 9 attrs).
    Protein,
    /// Synthetic hyper-rectangular clusters + uniform noise (1M × d).
    Synthetic,
}

impl Dataset {
    /// All datasets, in the paper's presentation order.
    pub const ALL: [Dataset; 5] = [
        Dataset::Bike,
        Dataset::Forest,
        Dataset::Power,
        Dataset::Protein,
        Dataset::Synthetic,
    ];

    /// Report name.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Bike => "bike",
            Dataset::Forest => "forest",
            Dataset::Power => "power",
            Dataset::Protein => "protein",
            Dataset::Synthetic => "synthetic",
        }
    }

    /// Full row count of the original dataset.
    pub fn full_rows(self) -> usize {
        match self {
            Dataset::Bike => 17_379,
            Dataset::Forest => 581_012,
            Dataset::Power => 2_075_259,
            Dataset::Protein => 45_730,
            Dataset::Synthetic => 1_000_000,
        }
    }

    /// Number of attributes the generator produces before projection.
    pub fn full_dims(self) -> usize {
        match self {
            Dataset::Bike => 16,
            Dataset::Forest => 10,
            Dataset::Power => 9,
            Dataset::Protein => 9,
            Dataset::Synthetic => 8,
        }
    }

    /// Generates the full-width dataset with `rows` rows.
    pub fn generate(self, rows: usize, seed: u64) -> Table {
        match self {
            Dataset::Bike => bike::generate(rows, seed),
            Dataset::Forest => forest::generate(rows, seed),
            Dataset::Power => power::generate(rows, seed),
            Dataset::Protein => protein::generate(rows, seed),
            Dataset::Synthetic => {
                synthetic::generate(&synthetic::SyntheticConfig::paper_default(8, rows), seed)
            }
        }
    }

    /// Generates the dataset projected onto `dims` attributes, chosen by a
    /// seeded random subset — the paper's 3D/8D versions "were created by
    /// projecting the full dataset onto a random subset of the available
    /// attributes" (§6.1.2).
    ///
    /// # Panics
    /// Panics if `dims` exceeds the dataset's attribute count.
    pub fn generate_projected(self, dims: usize, rows: usize, seed: u64) -> Table {
        let full = self.full_dims();
        assert!(
            dims <= full,
            "{} has only {full} attributes, requested {dims}",
            self.name()
        );
        let table = self.generate(rows, seed);
        if dims == full {
            return table;
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut cols: Vec<usize> = (0..full).collect();
        cols.shuffle(&mut rng);
        cols.truncate(dims);
        cols.sort_unstable();
        project(&table, &cols)
    }
}

/// Projects a table onto the given column indices.
pub fn project(table: &Table, cols: &[usize]) -> Table {
    assert!(!cols.is_empty());
    assert!(cols.iter().all(|&c| c < table.dims()));
    let mut data = Vec::with_capacity(table.row_count() * cols.len());
    for (_, row) in table.rows() {
        for &c in cols {
            data.push(row[c]);
        }
    }
    Table::from_rows(cols.len(), &data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_datasets_generate_requested_shape() {
        for ds in Dataset::ALL {
            let t = ds.generate(500, 42);
            assert_eq!(t.row_count(), 500, "{}", ds.name());
            assert_eq!(t.dims(), ds.full_dims(), "{}", ds.name());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for ds in Dataset::ALL {
            let a = ds.generate(200, 7);
            let b = ds.generate(200, 7);
            let ra: Vec<_> = a.rows().map(|(_, r)| r.to_vec()).collect();
            let rb: Vec<_> = b.rows().map(|(_, r)| r.to_vec()).collect();
            assert_eq!(ra, rb, "{}", ds.name());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Dataset::Protein.generate(100, 1);
        let b = Dataset::Protein.generate(100, 2);
        let ra: Vec<_> = a.rows().map(|(_, r)| r.to_vec()).collect();
        let rb: Vec<_> = b.rows().map(|(_, r)| r.to_vec()).collect();
        assert_ne!(ra, rb);
    }

    #[test]
    fn projection_selects_columns() {
        let t = Table::from_rows(3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let p = project(&t, &[0, 2]);
        assert_eq!(p.dims(), 2);
        let rows: Vec<_> = p.rows().map(|(_, r)| r.to_vec()).collect();
        assert_eq!(rows, vec![vec![1.0, 3.0], vec![4.0, 6.0]]);
    }

    #[test]
    fn projected_generation_matches_dims() {
        for dims in [3, 8] {
            let t = Dataset::Bike.generate_projected(dims, 300, 11);
            assert_eq!(t.dims(), dims);
            assert_eq!(t.row_count(), 300);
        }
    }

    #[test]
    fn projected_columns_are_seed_stable() {
        let a = Dataset::Forest.generate_projected(3, 100, 5);
        let b = Dataset::Forest.generate_projected(3, 100, 5);
        let ra: Vec<_> = a.rows().map(|(_, r)| r.to_vec()).collect();
        let rb: Vec<_> = b.rows().map(|(_, r)| r.to_vec()).collect();
        assert_eq!(ra, rb);
    }

    #[test]
    #[should_panic(expected = "requested")]
    fn overprojection_panics() {
        Dataset::Power.generate_projected(50, 10, 0);
    }
}
