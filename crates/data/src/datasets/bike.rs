//! Bike-sharing simulacrum.
//!
//! Stands in for the UCI "Bike Sharing" dataset the paper uses (§6.1.2:
//! "Hourly aggregated usage statistics for the Washington DC bike sharing
//! system... 17,379 data points with 16 continuous attributes"). The
//! generator reproduces the dataset's statistical character:
//!
//! * an hourly time index with strong daily and yearly periodicity,
//! * weather variables (temp, feels-like temp, humidity, windspeed) with
//!   the documented correlations (temp↔atemp ≈ 0.99, temp↔humidity < 0),
//! * demand counts (casual, registered, total) that are non-negative,
//!   right-skewed, bimodal over the day (commute peaks) and strongly
//!   correlated with temperature and hour,
//! * calendar attributes (season, weekday, workingday) stored as reals.

use kdesel_storage::Table;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};

/// Generates `rows` hourly records. 16 attributes per row:
/// `[hour, day_of_week, season, workingday, temp, atemp, humidity,
///   windspeed, visibility, uv_index, casual, registered, total,
///   lag_total, temp_trend, pressure]`.
pub fn generate(rows: usize, seed: u64) -> Table {
    assert!(rows > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let noise: Normal<f64> = Normal::new(0.0, 1.0).expect("valid normal");
    let mut data = Vec::with_capacity(rows * 16);
    let mut prev_total = 100.0;

    for t in 0..rows {
        let hour = (t % 24) as f64;
        let day = ((t / 24) % 7) as f64;
        let yearday = ((t / 24) % 365) as f64;
        let season = (yearday / 91.25).floor().min(3.0);
        let workingday = if day < 5.0 { 1.0 } else { 0.0 };

        // Weather: yearly + daily temperature cycle, °C-ish scale.
        let seasonal = 12.0 - 14.0 * (2.0 * std::f64::consts::PI * (yearday - 15.0) / 365.0).cos();
        let diurnal = 4.0 * (2.0 * std::f64::consts::PI * (hour - 14.0) / 24.0).cos();
        let temp = seasonal + diurnal + 2.0 * noise.sample(&mut rng);
        let atemp = 0.95 * temp + 1.0 + 0.8 * noise.sample(&mut rng); // ρ ≈ 0.99
        let humidity = (75.0 - 1.2 * temp + 8.0 * noise.sample(&mut rng)).clamp(0.0, 100.0);
        let windspeed = (8.0 + 4.0 * noise.sample(&mut rng)).abs();
        let visibility = (10.0 - 0.04 * humidity + 0.5 * noise.sample(&mut rng)).clamp(0.5, 10.0);
        let uv_index =
            ((temp / 6.0) * (1.0 - humidity / 200.0) * (-((hour - 13.0) / 4.0).powi(2)).exp())
                .max(0.0);

        // Demand: commute double peak on working days, midday hump on
        // weekends; modulated by temperature; right-skewed noise.
        let commute =
            (-((hour - 8.0) / 1.5).powi(2)).exp() + (-((hour - 18.0) / 2.0).powi(2)).exp();
        let leisure = (-((hour - 14.0) / 3.5).powi(2)).exp();
        let shape = if workingday == 1.0 {
            0.8 * commute + 0.2 * leisure
        } else {
            0.15 * commute + 0.85 * leisure
        };
        let weather_factor = (1.0 + (temp - 10.0) / 25.0).clamp(0.1, 2.0)
            * (1.0 - (humidity - 60.0).max(0.0) / 120.0);
        let base = 260.0 * shape * weather_factor;
        let lognorm = (0.35 * noise.sample(&mut rng)).exp();
        let registered = (base * lognorm * if workingday == 1.0 { 1.0 } else { 0.55 }).max(0.0);
        let casual = (0.35 * base * lognorm * if workingday == 1.0 { 0.4 } else { 1.3 }).max(0.0);
        let total = casual + registered;

        let temp_trend = diurnal + 0.5 * noise.sample(&mut rng);
        let pressure = 1013.0 - 0.3 * temp + 3.0 * noise.sample(&mut rng);

        data.extend_from_slice(&[
            hour + rng.gen_range(0.0..1.0) * 1e-3, // break exact ties, keep hour semantics
            day,
            season,
            workingday,
            temp,
            atemp,
            humidity,
            windspeed,
            visibility,
            uv_index,
            casual,
            registered,
            total,
            prev_total,
            temp_trend,
            pressure,
        ]);
        prev_total = total;
    }
    Table::from_rows(16, &data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdesel_math::Covariance;

    fn cov_of(rows: usize) -> (Table, Covariance) {
        let t = generate(rows, 42);
        let mut c = Covariance::new(16);
        for (_, r) in t.rows() {
            c.add(r);
        }
        (t, c)
    }

    #[test]
    fn temp_and_atemp_strongly_correlated() {
        let (_, c) = cov_of(5000);
        assert!(c.correlation(4, 5) > 0.9, "ρ = {}", c.correlation(4, 5));
    }

    #[test]
    fn temp_and_humidity_anticorrelated() {
        let (_, c) = cov_of(5000);
        assert!(c.correlation(4, 6) < -0.2, "ρ = {}", c.correlation(4, 6));
    }

    #[test]
    fn demand_correlates_with_temperature() {
        let (_, c) = cov_of(5000);
        assert!(c.correlation(4, 12) > 0.2, "ρ = {}", c.correlation(4, 12));
    }

    #[test]
    fn counts_are_nonnegative_and_skewed() {
        let (t, c) = cov_of(5000);
        for (_, r) in t.rows() {
            assert!(r[10] >= 0.0 && r[11] >= 0.0 && r[12] >= 0.0);
        }
        // Right skew: mean above median for total count.
        let mut totals: Vec<f64> = t.rows().map(|(_, r)| r[12]).collect();
        totals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = totals[totals.len() / 2];
        assert!(c.means()[12] > median, "not right-skewed");
    }

    #[test]
    fn total_is_casual_plus_registered() {
        let t = generate(500, 3);
        for (_, r) in t.rows() {
            assert!((r[12] - (r[10] + r[11])).abs() < 1e-9);
        }
    }
}
