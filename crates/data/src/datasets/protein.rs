//! Protein tertiary-structure simulacrum.
//!
//! Stands in for the UCI "Physicochemical Properties of Protein Tertiary
//! Structure" (CASP) dataset (§6.1.2: "45,730 points with 9 continuous
//! attributes"). The real attributes (F1–F9) are size-dependent structural
//! quantities — total surface area, non-polar exposed area, fractional
//! areas, radius of gyration, secondary-structure penalties — nearly all of
//! which scale with protein size, producing a dense block of strong
//! positive correlations with heavy right tails. The generator reproduces
//! that structure from a latent log-normal "protein size" factor.
//!
//! Attribute order: `[f1_total_area, f2_nonpolar_area, f3_frac_area,
//! f4_gyration, f5_exposed_frac, f6_energy, f7_spatial, f8_sse_count,
//! f9_penalty]`.

use kdesel_storage::Table;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, Normal};

/// Generates `rows` protein decoys with 9 continuous attributes.
pub fn generate(rows: usize, seed: u64) -> Table {
    assert!(rows > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let noise: Normal<f64> = Normal::new(0.0, 1.0).expect("valid normal");
    let mut data = Vec::with_capacity(rows * 9);

    for _ in 0..rows {
        // Latent size factor (residue count), log-normal.
        let size = (4.7 + 0.72 * noise.sample(&mut rng)).exp(); // ~110 median, heavy tail

        // Areas scale superlinearly with size, with multiplicative noise.
        let total_area = 65.0 * size.powf(0.95) * (0.18 * noise.sample(&mut rng)).exp();
        let nonpolar_area = 0.38 * total_area * (0.15 * noise.sample(&mut rng)).exp();
        let frac_area = (nonpolar_area / total_area).clamp(0.05, 0.95);
        // Radius of gyration ~ size^(1/3).
        let gyration = 2.2 * size.powf(0.38) * (0.08 * noise.sample(&mut rng)).exp();
        let exposed_frac = (0.32 + 0.06 * noise.sample(&mut rng)).clamp(0.05, 0.8);
        // Energy-like score: negative of size with heavy tail.
        let energy = 90.0 * size.powf(0.9) * (0.3 * noise.sample(&mut rng)).exp();
        let spatial = 0.08 * total_area + 40.0 * noise.sample(&mut rng).abs();
        let sse_count = (size / 8.0 + 3.0 * noise.sample(&mut rng)).max(1.0).round();
        let penalty = (0.015 * energy * (0.5 * noise.sample(&mut rng)).exp()).max(0.0);

        data.extend_from_slice(&[
            total_area,
            nonpolar_area,
            frac_area,
            gyration,
            exposed_frac,
            energy,
            spatial,
            sse_count,
            penalty,
        ]);
    }
    Table::from_rows(9, &data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdesel_math::Covariance;

    #[test]
    fn size_driven_attributes_are_strongly_correlated() {
        let t = generate(10_000, 1);
        let mut c = Covariance::new(9);
        for (_, r) in t.rows() {
            c.add(r);
        }
        // F1↔F2 (areas), F1↔F4 (area vs gyration), F1↔F6 (area vs energy)
        assert!(c.correlation(0, 1) > 0.8, "ρ01 = {}", c.correlation(0, 1));
        assert!(c.correlation(0, 3) > 0.5, "ρ03 = {}", c.correlation(0, 3));
        assert!(c.correlation(0, 5) > 0.5, "ρ05 = {}", c.correlation(0, 5));
    }

    #[test]
    fn heavy_right_tails() {
        let t = generate(20_000, 2);
        let mut areas: Vec<f64> = t.rows().map(|(_, r)| r[0]).collect();
        areas.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mean = areas.iter().sum::<f64>() / areas.len() as f64;
        let median = areas[areas.len() / 2];
        let p99 = areas[(areas.len() as f64 * 0.99) as usize];
        assert!(mean > median * 1.1, "no right skew");
        assert!(
            p99 > 4.0 * median,
            "tail too light: p99 {p99}, median {median}"
        );
    }

    #[test]
    fn fractions_stay_in_unit_range() {
        let t = generate(5_000, 3);
        for (_, r) in t.rows() {
            assert!((0.0..=1.0).contains(&r[2]));
            assert!((0.0..=1.0).contains(&r[4]));
            assert!(r[0] > 0.0 && r[1] > 0.0 && r[3] > 0.0);
        }
    }

    #[test]
    fn sse_count_is_discrete_positive() {
        let t = generate(5_000, 4);
        for (_, r) in t.rows() {
            assert_eq!(r[7].fract(), 0.0);
            assert!(r[7] >= 1.0);
        }
    }
}
