//! Forest cover-type simulacrum.
//!
//! Stands in for the UCI "Covertype" dataset (§6.1.2: "Geological survey of
//! forest cover types in the US... 581,012 points"; the paper projects onto
//! the 10 continuous attributes). The generator reproduces its character:
//!
//! * elevation as a mixture over cover-type zones → multi-modal marginal,
//! * aspect as a circular (wrapped) variable in [0, 360),
//! * slope right-skewed,
//! * horizontal/vertical hydrology distances correlated with each other
//!   and with elevation,
//! * the three hillshade indices (9am/noon/3pm) bounded in [0, 255] and
//!   driven by aspect & slope, giving strong negative 9am↔3pm correlation.
//!
//! Attribute order matches the UCI continuous columns:
//! `[elevation, aspect, slope, horiz_hydro, vert_hydro, horiz_road,
//!   hillshade_9am, hillshade_noon, hillshade_3pm, horiz_fire]`.

use kdesel_storage::Table;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};

/// Elevation zones: (mean elevation, weight) per dominant cover type.
const ZONES: [(f64, f64); 4] = [
    (2200.0, 0.15),
    (2600.0, 0.25),
    (2950.0, 0.45),
    (3350.0, 0.15),
];

/// Generates `rows` survey cells with 10 continuous attributes.
pub fn generate(rows: usize, seed: u64) -> Table {
    assert!(rows > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let noise: Normal<f64> = Normal::new(0.0, 1.0).expect("valid normal");
    let mut data = Vec::with_capacity(rows * 10);

    for _ in 0..rows {
        // Pick an elevation zone (multi-modal marginal).
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        let mut zone = ZONES[ZONES.len() - 1];
        for z in ZONES {
            acc += z.1;
            if u <= acc {
                zone = z;
                break;
            }
        }
        let elevation = zone.0 + 130.0 * noise.sample(&mut rng);

        let aspect: f64 = rng.gen_range(0.0..360.0);
        // Slope: right-skewed via squared normal, steeper at high elevation.
        let slope =
            (2.0 + 10.0 * noise.sample(&mut rng).powi(2) + (elevation - 2800.0).max(0.0) / 150.0)
                .clamp(0.0, 60.0);

        // Hydrology distances: higher cells sit further from water; the
        // vertical distance tracks the horizontal one.
        let horiz_hydro =
            ((elevation - 1900.0) / 4.0 + 90.0 * noise.sample(&mut rng).abs()).max(0.0);
        let vert_hydro = 0.18 * horiz_hydro + 15.0 * noise.sample(&mut rng);

        let horiz_road =
            (1500.0 + (elevation - 2800.0) * 1.1 + 700.0 * noise.sample(&mut rng)).max(0.0);
        let horiz_fire = (1400.0 + 0.3 * horiz_road + 600.0 * noise.sample(&mut rng)).max(0.0);

        // Hillshade model: illumination from the east at 9am, south at noon,
        // west at 3pm; east faces bright in the morning, dark in the
        // afternoon — the classic negative 9am↔3pm correlation.
        let asp_rad = aspect.to_radians();
        let slope_factor = (slope / 60.0) * 110.0;
        let mut hs = |sun_azimuth_deg: f64, base: f64| -> f64 {
            let delta = (asp_rad - sun_azimuth_deg.to_radians()).cos();
            (base + slope_factor * delta + 8.0 * noise.sample(&mut rng)).clamp(0.0, 255.0)
        };
        let hillshade_9am = hs(100.0, 212.0);
        let hillshade_noon = hs(180.0, 223.0);
        let hillshade_3pm = hs(260.0, 140.0);

        data.extend_from_slice(&[
            elevation,
            aspect,
            slope,
            horiz_hydro,
            vert_hydro,
            horiz_road,
            hillshade_9am,
            hillshade_noon,
            hillshade_3pm,
            horiz_fire,
        ]);
    }
    Table::from_rows(10, &data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdesel_math::Covariance;

    #[test]
    fn elevation_is_multimodal() {
        let t = generate(20_000, 1);
        // Histogram over 100 m bins between 1800 and 3800: a unimodal
        // distribution has one run of increases then decreases; count local
        // maxima above a noise floor.
        let mut bins = [0u32; 20];
        for (_, r) in t.rows() {
            let b = (((r[0] - 1800.0) / 100.0) as isize).clamp(0, 19) as usize;
            bins[b] += 1;
        }
        let mut peaks = 0;
        for i in 1..19 {
            if bins[i] > bins[i - 1] && bins[i] >= bins[i + 1] && bins[i] > 400 {
                peaks += 1;
            }
        }
        assert!(peaks >= 2, "elevation looks unimodal: {bins:?}");
    }

    #[test]
    fn hillshade_morning_afternoon_anticorrelated() {
        let t = generate(10_000, 2);
        let mut c = Covariance::new(10);
        for (_, r) in t.rows() {
            c.add(r);
        }
        assert!(c.correlation(6, 8) < -0.3, "ρ = {}", c.correlation(6, 8));
    }

    #[test]
    fn hydrology_distances_correlate() {
        let t = generate(10_000, 3);
        let mut c = Covariance::new(10);
        for (_, r) in t.rows() {
            c.add(r);
        }
        assert!(c.correlation(3, 4) > 0.4, "ρ = {}", c.correlation(3, 4));
        assert!(c.correlation(0, 3) > 0.2, "ρ = {}", c.correlation(0, 3));
    }

    #[test]
    fn value_ranges_are_physical() {
        let t = generate(5_000, 4);
        for (_, r) in t.rows() {
            assert!((0.0..360.0).contains(&r[1]), "aspect {}", r[1]);
            assert!((0.0..=60.0).contains(&r[2]), "slope {}", r[2]);
            for hs in &r[6..9] {
                assert!((0.0..=255.0).contains(hs), "hillshade {hs}");
            }
            assert!(r[3] >= 0.0 && r[5] >= 0.0 && r[9] >= 0.0);
        }
    }

    #[test]
    fn slope_is_right_skewed() {
        let t = generate(10_000, 5);
        let mut slopes: Vec<f64> = t.rows().map(|(_, r)| r[2]).collect();
        slopes.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mean = slopes.iter().sum::<f64>() / slopes.len() as f64;
        let median = slopes[slopes.len() / 2];
        assert!(mean > median * 1.05, "mean {mean} vs median {median}");
    }
}
