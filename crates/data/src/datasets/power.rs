//! Household power-consumption simulacrum.
//!
//! Stands in for the UCI "Individual household electric power consumption"
//! dataset (§6.1.2: "Time series describing the electric power consumption
//! in a single household with one-minute resolution... 9 attributes
//! containing continuous and discrete values"). Reproduced character:
//!
//! * minute-of-day / day-of-week time attributes,
//! * global active power: non-negative, strongly right-skewed, spiky, with
//!   morning/evening peaks and appliance bursts,
//! * global intensity ∝ active power (ρ ≈ 1, the dataset's famous
//!   near-duplicate column),
//! * voltage ≈ 240 V with small fluctuations, weakly anti-correlated with
//!   load,
//! * three sub-meterings that are zero-inflated small integers (the
//!   "discrete values" the paper mentions) summing to less than the total.
//!
//! Attribute order: `[minute_of_day, day_of_week, active_power,
//! reactive_power, voltage, intensity, sub1, sub2, sub3]`.

use kdesel_storage::Table;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};

/// Generates `rows` minute-resolution readings with 9 attributes.
pub fn generate(rows: usize, seed: u64) -> Table {
    assert!(rows > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let noise: Normal<f64> = Normal::new(0.0, 1.0).expect("valid normal");
    let mut data = Vec::with_capacity(rows * 9);
    // Appliance burst state machine: occasionally a heavy appliance (oven,
    // water heater) runs for a contiguous stretch of minutes.
    let mut burst_left = 0u32;
    let mut burst_power = 0.0;

    for t in 0..rows {
        let minute = (t % 1440) as f64;
        let day = ((t / 1440) % 7) as f64;
        let hour = minute / 60.0;

        // Daily base-load profile: low overnight, morning and evening peaks.
        let profile = 0.3
            + 0.9 * (-((hour - 7.5) / 1.8).powi(2)).exp()
            + 1.4 * (-((hour - 20.0) / 2.2).powi(2)).exp();

        if burst_left == 0 && rng.gen_bool(0.004) {
            burst_left = rng.gen_range(10..90);
            burst_power = rng.gen_range(1.0..4.0);
        }
        let burst = if burst_left > 0 {
            burst_left -= 1;
            burst_power
        } else {
            0.0
        };

        // Right-skewed multiplicative noise on the base load.
        let active = ((profile * (0.25 * noise.sample(&mut rng)).exp()) + burst).max(0.02);
        let reactive = (0.1 + 0.04 * active + 0.05 * noise.sample(&mut rng).abs()).max(0.0);
        let voltage = 240.0 - 1.1 * active + 1.8 * noise.sample(&mut rng);
        // I = P/U (scaled): the near-duplicate column.
        let intensity = active * 1000.0 / voltage.max(1.0) / 4.0;

        // Sub-meterings: zero-inflated small integers (Wh within the minute).
        let sub1 = if rng.gen_bool(0.06) {
            rng.gen_range(1..40) as f64
        } else {
            0.0
        }; // kitchen
        let sub2 = if rng.gen_bool(0.10) {
            rng.gen_range(1..30) as f64
        } else {
            0.0
        }; // laundry
           // Water-heater/AC tracks bursts.
        let sub3 = if burst > 0.5 {
            (burst * 4.5).round()
        } else if rng.gen_bool(0.3) {
            rng.gen_range(0..2) as f64
        } else {
            0.0
        };

        data.extend_from_slice(&[
            minute, day, active, reactive, voltage, intensity, sub1, sub2, sub3,
        ]);
    }
    Table::from_rows(9, &data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdesel_math::Covariance;

    #[test]
    fn intensity_tracks_active_power() {
        let t = generate(20_000, 1);
        let mut c = Covariance::new(9);
        for (_, r) in t.rows() {
            c.add(r);
        }
        assert!(c.correlation(2, 5) > 0.95, "ρ = {}", c.correlation(2, 5));
    }

    #[test]
    fn voltage_anticorrelates_with_load() {
        let t = generate(20_000, 2);
        let mut c = Covariance::new(9);
        for (_, r) in t.rows() {
            c.add(r);
        }
        assert!(c.correlation(2, 4) < -0.2, "ρ = {}", c.correlation(2, 4));
    }

    #[test]
    fn active_power_right_skewed_and_positive() {
        let t = generate(20_000, 3);
        let mut v: Vec<f64> = t.rows().map(|(_, r)| r[2]).collect();
        assert!(v.iter().all(|&x| x > 0.0));
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        let median = v[v.len() / 2];
        assert!(mean > median * 1.1, "mean {mean}, median {median}");
    }

    #[test]
    fn sub_meterings_are_discrete_and_zero_inflated() {
        let t = generate(20_000, 4);
        let mut zeros = 0usize;
        for (_, r) in t.rows() {
            for s in &r[6..9] {
                assert_eq!(s.fract(), 0.0, "sub-metering {s} not integral");
            }
            if r[6] == 0.0 {
                zeros += 1;
            }
        }
        assert!(
            zeros as f64 > 0.8 * t.row_count() as f64,
            "sub1 not zero-inflated: {zeros}"
        );
    }

    #[test]
    fn voltage_stays_near_nominal() {
        let t = generate(10_000, 5);
        for (_, r) in t.rows() {
            assert!((210.0..260.0).contains(&r[4]), "voltage {}", r[4]);
        }
    }
}
