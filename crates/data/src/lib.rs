//! Datasets and query workloads for the evaluation (paper §6.1.2, §6.1.3).
//!
//! # Datasets
//!
//! The paper evaluates on four UCI datasets (Bike, Forest, Power, Protein)
//! plus the synthetic cluster generator of Gunopulos et al. The UCI data is
//! not redistributable here, so [`datasets`] provides *simulacra*: seeded
//! generators reproducing each dataset's documented size, dimensionality and
//! statistical character (correlation structure, multi-modality, skew,
//! discreteness). The synthetic generator follows the paper's description
//! exactly: "randomly placing hyper-rectangular clusters with a uniform
//! interior distribution, and then adding uniformly distributed noise".
//!
//! # Workloads
//!
//! [`workload`] implements the STHoles-paper methodology the authors adopt
//! (§6.1.3): a workload is a distribution of query *centers* (data-following
//! or uniform) plus a target measure (selectivity or volume):
//!
//! | name | centers | target |
//! |------|---------|--------|
//! | DT   | data    | 1% selectivity |
//! | DV   | data    | 1% volume |
//! | UT   | uniform | 1% selectivity |
//! | UV   | uniform | 1% volume |

pub mod csv;
pub mod datasets;
pub mod workload;

pub use csv::{load_csv_file, parse_csv, CsvOptions};
pub use datasets::{synthetic, Dataset};
pub use workload::{generate_workload, WorkloadKind, WorkloadSpec};
