//! Plain CSV ingestion for real datasets.
//!
//! The evaluation datasets ship as seeded *simulacra* (see the crate docs);
//! users who have the actual UCI files — or any numeric CSV — can load them
//! with this module and run every experiment against the real bytes. The
//! parser is intentionally minimal: comma (or custom) delimiter, optional
//! header row, `f64` columns, strict row arity.

use kdesel_storage::Table;

/// CSV parsing options.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Field delimiter (default `,`).
    pub delimiter: char,
    /// Skip the first line as a header (default: auto-detect — skipped when
    /// any field of the first line fails to parse as a number).
    pub has_header: Option<bool>,
    /// Columns to keep (all when empty).
    pub columns: Vec<usize>,
}

impl Default for CsvOptions {
    fn default() -> Self {
        Self {
            delimiter: ',',
            has_header: None,
            columns: Vec::new(),
        }
    }
}

/// Parse error with location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvError {
    /// 1-based line number.
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CSV line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CsvError {}

/// Parses CSV text into a [`Table`].
///
/// Empty lines are skipped. Every data row must have the same arity (after
/// column projection); non-numeric fields and NaN are errors.
pub fn parse_csv(text: &str, options: &CsvOptions) -> Result<Table, CsvError> {
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut width: Option<usize> = None;
    let mut first_content_line = true;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(options.delimiter).map(str::trim).collect();
        let parsed: Result<Vec<f64>, usize> = fields
            .iter()
            .enumerate()
            .map(|(i, f)| f.parse::<f64>().map_err(|_| i))
            .collect();
        if first_content_line {
            first_content_line = false;
            let treat_as_header = options.has_header.unwrap_or(parsed.is_err());
            if treat_as_header {
                continue;
            }
        }
        let mut values = match parsed {
            Ok(v) => v,
            Err(col) => {
                return Err(CsvError {
                    line: lineno + 1,
                    message: format!("field {} ({:?}) is not numeric", col + 1, fields[col]),
                })
            }
        };
        if values.iter().any(|v| v.is_nan()) {
            return Err(CsvError {
                line: lineno + 1,
                message: "NaN value".to_string(),
            });
        }
        if !options.columns.is_empty() {
            let mut projected = Vec::with_capacity(options.columns.len());
            for &c in &options.columns {
                if c >= values.len() {
                    return Err(CsvError {
                        line: lineno + 1,
                        message: format!("column {c} out of range ({} fields)", values.len()),
                    });
                }
                projected.push(values[c]);
            }
            values = projected;
        }
        match width {
            None => width = Some(values.len()),
            Some(w) if w != values.len() => {
                return Err(CsvError {
                    line: lineno + 1,
                    message: format!("expected {w} fields, found {}", values.len()),
                })
            }
            _ => {}
        }
        rows.push(values);
    }
    let width = width.ok_or(CsvError {
        line: 0,
        message: "no data rows".to_string(),
    })?;
    if width == 0 {
        return Err(CsvError {
            line: 1,
            message: "zero columns".to_string(),
        });
    }
    let mut data = Vec::with_capacity(rows.len() * width);
    for r in rows {
        data.extend(r);
    }
    Ok(Table::from_rows(width, &data))
}

/// Loads a CSV file into a [`Table`].
pub fn load_csv_file(
    path: &std::path::Path,
    options: &CsvOptions,
) -> Result<Table, Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path)?;
    Ok(parse_csv(&text, options)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_numeric_csv() {
        let t = parse_csv("1,2.5\n3,4\n", &CsvOptions::default()).unwrap();
        assert_eq!(t.dims(), 2);
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.row(0), Some([1.0, 2.5].as_slice()));
    }

    #[test]
    fn auto_detects_header() {
        let t = parse_csv("x,y\n1,2\n3,4\n", &CsvOptions::default()).unwrap();
        assert_eq!(t.row_count(), 2);
        // Explicit no-header on all-numeric first row keeps it.
        let t2 = parse_csv(
            "1,2\n3,4\n",
            &CsvOptions {
                has_header: Some(false),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(t2.row_count(), 2);
        // Forced header drops a numeric first row.
        let t3 = parse_csv(
            "1,2\n3,4\n",
            &CsvOptions {
                has_header: Some(true),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(t3.row_count(), 1);
    }

    #[test]
    fn column_projection() {
        let opts = CsvOptions {
            columns: vec![2, 0],
            ..Default::default()
        };
        let t = parse_csv("1,2,3\n4,5,6\n", &opts).unwrap();
        assert_eq!(t.dims(), 2);
        assert_eq!(t.row(0), Some([3.0, 1.0].as_slice()));
    }

    #[test]
    fn custom_delimiter_and_blank_lines() {
        let opts = CsvOptions {
            delimiter: ';',
            ..Default::default()
        };
        let t = parse_csv("1;2\n\n  \n3;4\n", &opts).unwrap();
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_csv("1,2\nfoo,4\n", &CsvOptions::default()).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("not numeric"));

        let err = parse_csv("1,2\n3\n", &CsvOptions::default()).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("expected 2 fields"));

        let err = parse_csv("", &CsvOptions::default()).unwrap_err();
        assert!(err.message.contains("no data rows"));

        let err = parse_csv(
            "1,2\n",
            &CsvOptions {
                columns: vec![5],
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(err.message.contains("out of range"));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("kdesel_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        std::fs::write(&path, "a,b\n1,2\n3,4\n").unwrap();
        let t = load_csv_file(&path, &CsvOptions::default()).unwrap();
        assert_eq!(t.row_count(), 2);
        std::fs::remove_file(&path).ok();
    }
}
