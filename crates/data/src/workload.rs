//! Query-workload generation (paper §6.1.3, after the STHoles methodology).
//!
//! "Each workload is specified by a distribution for the query centers and a
//! target measure that the queries have to meet." Centers follow either the
//! data distribution (sampled tuples) or a uniform distribution over the
//! data's bounding box; the target is either a selectivity (fraction of
//! tuples) or a volume (fraction of the data space).
//!
//! Selectivity-targeted queries are built by growing a box around the
//! center — per-dimension widths proportional to the column standard
//! deviations — until it captures the target fraction, via bisection on the
//! scale factor. For large tables the bisection evaluates selectivity on a
//! fixed random subsample (20 K rows) for speed; the *label* attached to the
//! query is always the exact full-table selectivity.

use kdesel_storage::{sampling, Table};
use kdesel_types::{LabelledQuery, Rect};
use rand::Rng;

/// Center distribution × target measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Data-distributed centers, target selectivity ("well-defined user
    /// queries that return roughly the same number of tuples").
    DataTarget,
    /// Data-distributed centers, target volume ("explorative user queries
    /// having a wide spectrum of different selectivities").
    DataVolume,
    /// Uniform centers, target selectivity ("random workload with queries
    /// having highly diverse query volumes").
    UniformTarget,
    /// Uniform centers, target volume ("random workload with mostly empty
    /// queries").
    UniformVolume,
}

impl WorkloadKind {
    /// All four workloads in the paper's order.
    pub const ALL: [WorkloadKind; 4] = [
        WorkloadKind::DataTarget,
        WorkloadKind::DataVolume,
        WorkloadKind::UniformTarget,
        WorkloadKind::UniformVolume,
    ];

    /// The paper's abbreviation (DT/DV/UT/UV).
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::DataTarget => "DT",
            WorkloadKind::DataVolume => "DV",
            WorkloadKind::UniformTarget => "UT",
            WorkloadKind::UniformVolume => "UV",
        }
    }

    /// Whether centers follow the data distribution.
    pub fn data_centered(self) -> bool {
        matches!(self, WorkloadKind::DataTarget | WorkloadKind::DataVolume)
    }

    /// Whether the target measure is selectivity (vs volume).
    pub fn selectivity_targeted(self) -> bool {
        matches!(self, WorkloadKind::DataTarget | WorkloadKind::UniformTarget)
    }
}

/// A workload specification.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    /// Which of the four workload families.
    pub kind: WorkloadKind,
    /// Target selectivity or volume fraction (the paper uses 1%).
    pub target: f64,
}

impl WorkloadSpec {
    /// The paper's configuration: 1% target.
    pub fn paper(kind: WorkloadKind) -> Self {
        Self { kind, target: 0.01 }
    }
}

/// Rows used for bisection-time selectivity evaluation on large tables.
const TARGETING_SAMPLE: usize = 20_000;

/// Generates `count` labelled queries against `table`.
///
/// Labels are exact full-table selectivities. Queries on an empty table are
/// rejected.
///
/// # Panics
/// Panics if the table is empty or the target is outside `(0, 1]`.
pub fn generate_workload<R: Rng + ?Sized>(
    table: &Table,
    spec: WorkloadSpec,
    count: usize,
    rng: &mut R,
) -> Vec<LabelledQuery> {
    assert!(!table.is_empty(), "workload over an empty relation");
    assert!(
        spec.target > 0.0 && spec.target <= 1.0,
        "target {} out of (0,1]",
        spec.target
    );
    let dims = table.dims();
    let bbox = table.bounding_box().expect("non-empty table");
    let std_devs = table.column_std_devs();
    // Guard degenerate dimensions: fall back to 1% of the extent (or 1.0 if
    // the whole column is a single value).
    let widths: Vec<f64> = std_devs
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            if s > 0.0 {
                s
            } else {
                let e = bbox.extent(i);
                if e > 0.0 {
                    e * 0.01
                } else {
                    1.0
                }
            }
        })
        .collect();

    // Subsampled table for bisection when the full table is large.
    let targeting_table = if table.row_count() > TARGETING_SAMPLE {
        Some(Table::from_rows(
            dims,
            &sampling::sample_rows(table, TARGETING_SAMPLE, rng),
        ))
    } else {
        None
    };
    let search_table = targeting_table.as_ref().unwrap_or(table);

    let mut queries = Vec::with_capacity(count);
    for _ in 0..count {
        let center = if spec.kind.data_centered() {
            sampling::sample_one(table, rng).expect("non-empty table")
        } else {
            (0..dims)
                .map(|i| {
                    let (l, h) = bbox.interval(i);
                    if l == h {
                        l
                    } else {
                        rng.gen_range(l..h)
                    }
                })
                .collect()
        };

        let region = if spec.kind.selectivity_targeted() {
            selectivity_box(search_table, &center, &widths, spec.target, &bbox)
        } else {
            volume_box(&center, &bbox, spec.target)
        };
        let selectivity = table.selectivity(&region);
        queries.push(LabelledQuery::new(region, selectivity));
    }
    queries
}

/// Box centered at `center` whose volume is `fraction` of the bounding box:
/// each side is `fraction^(1/d)` of the corresponding domain extent.
fn volume_box(center: &[f64], bbox: &Rect, fraction: f64) -> Rect {
    let d = center.len();
    let side_frac = fraction.powf(1.0 / d as f64);
    let half_widths: Vec<f64> = (0..d).map(|i| 0.5 * side_frac * bbox.extent(i)).collect();
    Rect::centered(center, &half_widths)
}

/// Grows a box around `center` (per-dimension widths ∝ `widths`) until it
/// contains `target` of the table, by bisection on the scale factor.
fn selectivity_box(
    table: &Table,
    center: &[f64],
    widths: &[f64],
    target: f64,
    bbox: &Rect,
) -> Rect {
    let make = |scale: f64| -> Rect {
        let hw: Vec<f64> = widths.iter().map(|&w| w * scale).collect();
        Rect::centered(center, &hw)
    };
    // Find an upper bracket: double until the box captures enough (or spans
    // everything).
    let max_scale = {
        // A scale large enough that the box covers the bounding box from any
        // interior center.
        let mut m: f64 = 1.0;
        for (i, w) in widths.iter().enumerate() {
            let span = bbox.extent(i).max(1e-12);
            m = m.max(2.0 * span / w.max(1e-12));
        }
        m
    };
    let mut hi = 0.25;
    let mut iterations = 0;
    while table.selectivity(&make(hi)) < target && hi < max_scale {
        hi *= 2.0;
        iterations += 1;
        if iterations > 64 {
            break;
        }
    }
    let mut lo = 0.0;
    // Bisection on the scale factor (selectivity is monotone in scale).
    for _ in 0..30 {
        let mid = 0.5 * (lo + hi);
        if table.selectivity(&make(mid)) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    make(hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// 2-D grid table of 50×50 = 2500 points over [0,49]².
    fn grid_table() -> Table {
        let mut data = Vec::new();
        for x in 0..50 {
            for y in 0..50 {
                data.push(x as f64);
                data.push(y as f64);
            }
        }
        Table::from_rows(2, &data)
    }

    #[test]
    fn selectivity_targeted_queries_hit_target() {
        let t = grid_table();
        let mut rng = StdRng::seed_from_u64(1);
        for kind in [WorkloadKind::DataTarget, WorkloadKind::UniformTarget] {
            let qs = generate_workload(&t, WorkloadSpec { kind, target: 0.01 }, 30, &mut rng);
            let mean: f64 = qs.iter().map(|q| q.selectivity).sum::<f64>() / qs.len() as f64;
            // 1% of 2500 = 25 tuples; grid granularity makes exact hits
            // impossible, so allow a generous band around the target.
            assert!(
                (0.004..0.05).contains(&mean),
                "{}: mean selectivity {mean}",
                kind.name()
            );
        }
    }

    #[test]
    fn volume_targeted_queries_have_exact_volume() {
        let t = grid_table();
        let mut rng = StdRng::seed_from_u64(2);
        let qs = generate_workload(
            &t,
            WorkloadSpec {
                kind: WorkloadKind::DataVolume,
                target: 0.01,
            },
            20,
            &mut rng,
        );
        let bbox_vol = t.bounding_box().unwrap().volume();
        for q in &qs {
            let ratio = q.region.volume() / bbox_vol;
            assert!((ratio - 0.01).abs() < 1e-9, "volume ratio {ratio}");
        }
    }

    #[test]
    fn uniform_volume_queries_are_often_empty_on_clustered_data() {
        // Two tight clusters in a huge domain: UV queries mostly miss.
        let mut data = Vec::new();
        for i in 0..500 {
            let o = (i % 2) as f64 * 900.0;
            data.push(o + (i as f64 % 10.0) * 0.01);
            data.push(o + ((i / 10) as f64 % 10.0) * 0.01);
        }
        let t = Table::from_rows(2, &data);
        let mut rng = StdRng::seed_from_u64(3);
        let qs = generate_workload(
            &t,
            WorkloadSpec {
                kind: WorkloadKind::UniformVolume,
                target: 0.01,
            },
            100,
            &mut rng,
        );
        let empty = qs.iter().filter(|q| q.selectivity == 0.0).count();
        assert!(empty > 50, "only {empty}/100 empty");
    }

    #[test]
    fn data_centered_queries_are_nonempty() {
        let t = grid_table();
        let mut rng = StdRng::seed_from_u64(4);
        let qs = generate_workload(
            &t,
            WorkloadSpec {
                kind: WorkloadKind::DataTarget,
                target: 0.01,
            },
            30,
            &mut rng,
        );
        // A data-centered selectivity-targeted query always contains at
        // least its center tuple.
        for q in &qs {
            assert!(q.selectivity > 0.0);
        }
    }

    #[test]
    fn labels_match_exact_table_selectivity() {
        let t = grid_table();
        let mut rng = StdRng::seed_from_u64(5);
        for kind in WorkloadKind::ALL {
            let qs = generate_workload(&t, WorkloadSpec { kind, target: 0.01 }, 10, &mut rng);
            for q in &qs {
                assert_eq!(q.selectivity, t.selectivity(&q.region), "{}", kind.name());
            }
        }
    }

    #[test]
    fn degenerate_dimension_does_not_panic() {
        // Second column constant.
        let mut data = Vec::new();
        for i in 0..100 {
            data.push(i as f64);
            data.push(5.0);
        }
        let t = Table::from_rows(2, &data);
        let mut rng = StdRng::seed_from_u64(6);
        for kind in WorkloadKind::ALL {
            let qs = generate_workload(&t, WorkloadSpec { kind, target: 0.05 }, 5, &mut rng);
            assert_eq!(qs.len(), 5, "{}", kind.name());
        }
    }

    #[test]
    fn names_and_flags() {
        assert_eq!(WorkloadKind::DataTarget.name(), "DT");
        assert_eq!(WorkloadKind::UniformVolume.name(), "UV");
        assert!(WorkloadKind::DataVolume.data_centered());
        assert!(!WorkloadKind::UniformTarget.data_centered());
        assert!(WorkloadKind::UniformTarget.selectivity_targeted());
        assert!(!WorkloadKind::DataVolume.selectivity_targeted());
    }

    #[test]
    #[should_panic(expected = "empty relation")]
    fn empty_table_rejected() {
        let t = Table::new(2);
        let mut rng = StdRng::seed_from_u64(0);
        generate_workload(
            &t,
            WorkloadSpec::paper(WorkloadKind::DataTarget),
            1,
            &mut rng,
        );
    }
}
