//! STHoles: a workload-aware multidimensional histogram.
//!
//! From-scratch implementation of Bruno, Chaudhuri & Gravano's STHoles
//! [SIGMOD 2001], the self-tuning histogram the paper uses "as a proxy to
//! compare our estimator against the quality of state-of-the-art
//! multidimensional histograms" (§6.1.1).
//!
//! STHoles maintains a tree of nested rectangular buckets. Each bucket `b`
//! stores a frequency `f(b)` for its *exclusive* region — its box minus its
//! children's boxes. Query feedback drives refinement: the intersection of
//! a query with a bucket becomes a candidate *hole*; exact tuple counts for
//! the candidate (obtained from the executed query's tuple stream — here,
//! from a counting callback supplied by the engine) are drilled in as new
//! child buckets. When the bucket budget is exceeded, the pair of buckets
//! whose merge changes the histogram the least (parent-child or
//! sibling-sibling, chosen by penalty) is merged.

pub mod avi;
pub mod stholes;

pub use avi::{AviEstimator, EquiDepthHistogram};
pub use stholes::{SthConfig, SthHoles};
