//! The attribute-value-independence (AVI) baseline.
//!
//! §2.2 of the paper: "The easiest way to estimate the selectivity of a
//! multidimensional range query is to assume that attributes are
//! independent of each other. In this case, a d-dimensional estimate can be
//! computed by multiplying d one-dimensional estimates, e.g. obtained from
//! histograms. However, since real datasets are almost always correlated,
//! this attribute-value independence assumption often leads to significant
//! estimation errors." This module provides exactly that estimator — the
//! strawman every multidimensional technique is measured against — built
//! from per-attribute equi-depth histograms [Piatetsky-Shapiro & Connell].

use kdesel_types::{QueryFeedback, Rect, SelectivityEstimator};

/// A one-dimensional equi-depth (equi-height) histogram.
///
/// Stores `b+1` sorted boundaries so each of the `b` buckets holds the same
/// number of sample values; range selectivity interpolates linearly within
/// partially covered buckets.
#[derive(Debug, Clone)]
pub struct EquiDepthHistogram {
    boundaries: Vec<f64>,
}

impl EquiDepthHistogram {
    /// Builds a histogram with (at most) `buckets` buckets from a column of
    /// values.
    ///
    /// # Panics
    /// Panics on an empty column, NaN values, or `buckets == 0`.
    pub fn build(values: &[f64], buckets: usize) -> Self {
        assert!(!values.is_empty(), "empty column");
        assert!(buckets > 0);
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in column"));
        let b = buckets.min(sorted.len());
        let mut boundaries = Vec::with_capacity(b + 1);
        for i in 0..=b {
            // Type-7 quantile positions over the sorted sample.
            let pos = i as f64 / b as f64 * (sorted.len() - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            let frac = pos - lo as f64;
            boundaries.push(sorted[lo] + frac * (sorted[hi] - sorted[lo]));
        }
        Self { boundaries }
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.boundaries.len() - 1
    }

    /// Estimated fraction of values `≤ x` (the empirical CDF smoothed by
    /// the equi-depth assumption).
    pub fn cdf(&self, x: f64) -> f64 {
        let bounds = &self.boundaries;
        let b = self.buckets() as f64;
        if x < bounds[0] {
            return 0.0;
        }
        if x >= *bounds.last().expect("non-empty") {
            return 1.0;
        }
        // Binary search for the bucket containing x.
        let idx = bounds.partition_point(|&v| v <= x).saturating_sub(1);
        let (lo, hi) = (bounds[idx], bounds[idx + 1]);
        let within = if hi > lo { (x - lo) / (hi - lo) } else { 1.0 };
        (idx as f64 + within) / b
    }

    /// Estimated fraction of values in `(lo, hi)`.
    pub fn selectivity(&self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        (self.cdf(hi) - self.cdf(lo)).clamp(0.0, 1.0)
    }
}

/// The AVI estimator: independent per-attribute equi-depth histograms,
/// multiplied.
#[derive(Debug, Clone)]
pub struct AviEstimator {
    histograms: Vec<EquiDepthHistogram>,
}

impl AviEstimator {
    /// Builds per-dimension histograms from a row-major sample.
    ///
    /// # Panics
    /// Panics on an empty/ragged sample or `buckets_per_dim == 0`.
    pub fn build(sample: &[f64], dims: usize, buckets_per_dim: usize) -> Self {
        assert!(dims > 0);
        assert!(!sample.is_empty(), "empty sample");
        assert_eq!(sample.len() % dims, 0, "ragged sample");
        let histograms = (0..dims)
            .map(|d| {
                let column: Vec<f64> = sample.iter().skip(d).step_by(dims).copied().collect();
                EquiDepthHistogram::build(&column, buckets_per_dim)
            })
            .collect();
        Self { histograms }
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.histograms.len()
    }

    /// Estimated selectivity: the product of marginal selectivities.
    pub fn estimate(&self, region: &Rect) -> f64 {
        assert_eq!(region.dims(), self.dims());
        let mut p = 1.0;
        for (d, h) in self.histograms.iter().enumerate() {
            let (lo, hi) = region.interval(d);
            p *= h.selectivity(lo, hi);
            if p == 0.0 {
                break;
            }
        }
        p
    }

    /// Model footprint: boundaries only.
    pub fn memory_bytes(&self) -> usize {
        self.histograms
            .iter()
            .map(|h| (h.buckets() + 1) * std::mem::size_of::<f64>())
            .sum()
    }
}

impl SelectivityEstimator for AviEstimator {
    fn estimate(&mut self, region: &Rect) -> f64 {
        AviEstimator::estimate(self, region)
    }
    fn observe(&mut self, _feedback: &QueryFeedback) {}
    fn memory_bytes(&self) -> usize {
        AviEstimator::memory_bytes(self)
    }
    fn name(&self) -> &str {
        "avi"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equi_depth_cdf_on_uniform_grid() {
        let values: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let h = EquiDepthHistogram::build(&values, 16);
        assert!((h.cdf(499.5) - 0.5).abs() < 0.01);
        assert_eq!(h.cdf(-1.0), 0.0);
        assert_eq!(h.cdf(2000.0), 1.0);
        assert!((h.selectivity(250.0, 750.0) - 0.5).abs() < 0.01);
    }

    #[test]
    fn equi_depth_adapts_to_skew() {
        // 90% of mass at [0,1), 10% spread over [1,100): an equi-*width*
        // histogram would badly misestimate a query on [0, 1).
        let mut values = Vec::new();
        for i in 0..900 {
            values.push(i as f64 / 900.0);
        }
        for i in 0..100 {
            values.push(1.0 + 99.0 * i as f64 / 100.0);
        }
        let h = EquiDepthHistogram::build(&values, 16);
        let sel = h.selectivity(0.0, 1.0);
        assert!((sel - 0.9).abs() < 0.05, "selectivity {sel}");
    }

    #[test]
    fn repeated_values_do_not_break_construction() {
        let values = vec![5.0; 100];
        let h = EquiDepthHistogram::build(&values, 8);
        assert_eq!(h.selectivity(0.0, 10.0), 1.0);
        assert_eq!(h.selectivity(6.0, 10.0), 0.0);
    }

    #[test]
    fn avi_is_exact_on_independent_data() {
        // Independent uniform dims: the product assumption holds.
        let mut sample = Vec::new();
        for i in 0..50 {
            for j in 0..50 {
                sample.push(i as f64);
                sample.push(j as f64);
            }
        }
        let avi = AviEstimator::build(&sample, 2, 32);
        let q = Rect::from_intervals(&[(0.0, 24.5), (0.0, 24.5)]);
        let est = avi.estimate(&q);
        assert!((est - 0.25).abs() < 0.03, "estimate {est}");
    }

    #[test]
    fn avi_fails_on_correlated_data_as_the_paper_says() {
        // Perfectly correlated diagonal: x == y. A query on the off-diagonal
        // corner is empty, but AVI predicts 25%.
        let mut sample = Vec::new();
        for i in 0..1000 {
            sample.push(i as f64);
            sample.push(i as f64);
        }
        let avi = AviEstimator::build(&sample, 2, 32);
        let corner = Rect::from_intervals(&[(0.0, 499.0), (500.0, 999.0)]);
        let est = avi.estimate(&corner);
        assert!(
            est > 0.2,
            "AVI should (wrongly) predict ~0.25 here, got {est}"
        );
    }

    #[test]
    fn trait_impl_works() {
        let sample = vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0];
        let mut avi = AviEstimator::build(&sample, 2, 4);
        let v = SelectivityEstimator::estimate(&mut avi, &Rect::cube(2, -1.0, 3.0));
        assert!((v - 1.0).abs() < 1e-9);
        assert_eq!(SelectivityEstimator::name(&avi), "avi");
        assert!(SelectivityEstimator::memory_bytes(&avi) > 0);
    }
}
