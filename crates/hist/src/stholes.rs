//! The STHoles bucket tree.

use kdesel_storage::Table;
use kdesel_types::{QueryFeedback, Rect, SelectivityEstimator};

/// STHoles configuration.
#[derive(Debug, Clone, Copy)]
pub struct SthConfig {
    /// Bucket budget; merges keep the tree at or below this size.
    pub max_buckets: usize,
}

impl Default for SthConfig {
    fn default() -> Self {
        Self { max_buckets: 256 }
    }
}

type Id = usize;

#[derive(Debug, Clone)]
struct Bucket {
    bounds: Rect,
    /// Frequency of the bucket's *exclusive* region (box minus children).
    frequency: f64,
    children: Vec<Id>,
    parent: Option<Id>,
    alive: bool,
}

/// A self-tuning multidimensional histogram [Bruno et al. 2001].
#[derive(Debug, Clone)]
pub struct SthHoles {
    buckets: Vec<Bucket>,
    root: Id,
    config: SthConfig,
    live: usize,
    dims: usize,
}

/// Volumes below this are treated as degenerate.
const EPS_VOL: f64 = 1e-12;

impl SthHoles {
    /// Creates a histogram whose root covers `domain` and carries the
    /// relation's initial cardinality.
    pub fn new(domain: Rect, total_rows: u64, config: SthConfig) -> Self {
        assert!(config.max_buckets >= 1);
        let dims = domain.dims();
        Self {
            buckets: vec![Bucket {
                bounds: domain,
                frequency: total_rows as f64,
                children: Vec::new(),
                parent: None,
                alive: true,
            }],
            root: 0,
            config,
            live: 1,
            dims,
        }
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of live buckets.
    pub fn bucket_count(&self) -> usize {
        self.live
    }

    /// Sum of all bucket frequencies — the histogram's view of `|R|`.
    pub fn total_frequency(&self) -> f64 {
        self.buckets
            .iter()
            .filter(|b| b.alive)
            .map(|b| b.frequency)
            .sum()
    }

    /// Exclusive volume `v(b)`: box volume minus children's box volumes.
    fn exclusive_volume(&self, id: Id) -> f64 {
        let b = &self.buckets[id];
        let mut v = b.bounds.volume();
        for &c in &b.children {
            v -= self.buckets[c].bounds.volume();
        }
        v.max(0.0)
    }

    /// Volume of `q ∩ exclusive(b)`.
    fn query_overlap_volume(&self, id: Id, q: &Rect) -> f64 {
        let b = &self.buckets[id];
        let mut v = b.bounds.intersection_volume(q);
        for &c in &b.children {
            v -= self.buckets[c].bounds.intersection_volume(q);
        }
        v.max(0.0)
    }

    /// Estimated number of tuples in `q` (uniformity within exclusive
    /// bucket regions).
    pub fn estimate_count(&self, q: &Rect) -> f64 {
        assert_eq!(q.dims(), self.dims, "query dimensionality mismatch");
        let mut total = 0.0;
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            let b = &self.buckets[id];
            if !b.bounds.intersects(q) && !q.contains_rect(&b.bounds) {
                continue;
            }
            let vb = self.exclusive_volume(id);
            let vq = self.query_overlap_volume(id, q);
            if vb > EPS_VOL {
                total += b.frequency * (vq / vb).min(1.0);
            } else if q.contains_rect(&b.bounds) {
                // Degenerate bucket fully inside the query.
                total += b.frequency;
            }
            stack.extend_from_slice(&b.children);
        }
        total.max(0.0)
    }

    /// Estimated selectivity of `q`.
    pub fn estimate_selectivity(&self, q: &Rect) -> f64 {
        let total = self.total_frequency();
        if total <= 0.0 {
            return 0.0;
        }
        (self.estimate_count(q) / total).clamp(0.0, 1.0)
    }

    /// Refines the histogram with the feedback of one executed query.
    ///
    /// `count` returns the exact number of tuples in an arbitrary rectangle
    /// — the information the original system extracts from the executed
    /// query's tuple stream.
    pub fn refine<F: FnMut(&Rect) -> u64>(&mut self, q: &Rect, mut count: F) {
        assert_eq!(q.dims(), self.dims);
        // Grow the root to cover the query (the root is the only bucket
        // allowed to expand).
        let root_bounds = self.buckets[self.root].bounds.clone();
        if !root_bounds.contains_rect(q) {
            self.buckets[self.root].bounds = root_bounds.bounding_union(q);
        }

        // Identify candidate holes for every intersecting bucket first;
        // drilling changes the tree, so collect ids up front.
        let mut ids = Vec::new();
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            let b = &self.buckets[id];
            if b.bounds.intersection_volume(q) <= EPS_VOL {
                continue;
            }
            ids.push(id);
            stack.extend_from_slice(&b.children);
        }

        for id in ids {
            if !self.buckets[id].alive {
                continue;
            }
            self.drill_candidate(id, q, &mut count);
        }

        while self.live > self.config.max_buckets {
            self.merge_cheapest();
        }
    }

    /// Computes, shrinks, and drills the candidate hole `q ∩ box(b)`.
    fn drill_candidate<F: FnMut(&Rect) -> u64>(&mut self, b: Id, q: &Rect, count: &mut F) {
        let Some(mut c) = self.buckets[b].bounds.intersection(q) else {
            return;
        };
        // Shrink `c` until no child of `b` partially intersects it.
        loop {
            let mut offender: Option<Id> = None;
            for &ci in &self.buckets[b].children {
                let cb = &self.buckets[ci].bounds;
                if cb.contains_rect(&c) {
                    // The candidate lies inside a child: the child's own
                    // candidate handles this region.
                    return;
                }
                if cb.intersects(&c) && !c.contains_rect(cb) {
                    offender = Some(ci);
                    break;
                }
            }
            let Some(ci) = offender else { break };
            if !self.shrink_away(&mut c, ci) {
                return; // candidate collapsed
            }
        }
        if c.volume() <= EPS_VOL {
            return;
        }

        // Participants: children fully inside the shrunk candidate.
        let participants: Vec<Id> = self.buckets[b]
            .children
            .iter()
            .copied()
            .filter(|&ci| c.contains_rect(&self.buckets[ci].bounds))
            .collect();

        // Exact frequency of the candidate's exclusive region.
        let mut f_c = count(&c) as f64;
        for &p in &participants {
            f_c -= count(&self.buckets[p].bounds) as f64;
        }
        let f_c = f_c.max(0.0);

        if c == self.buckets[b].bounds {
            // The candidate covers the whole bucket: update in place.
            self.buckets[b].frequency = f_c;
            return;
        }

        // Drill the hole.
        let hole = self.alloc(Bucket {
            bounds: c,
            frequency: f_c,
            children: participants.clone(),
            parent: Some(b),
            alive: true,
        });
        for &p in &participants {
            self.buckets[p].parent = Some(hole);
        }
        self.buckets[b]
            .children
            .retain(|ci| !participants.contains(ci));
        self.buckets[b].children.push(hole);
        self.buckets[b].frequency = (self.buckets[b].frequency - f_c).max(0.0);
    }

    /// Shrinks candidate `c` along one dimension so it no longer intersects
    /// bucket `ci`, choosing the cut that keeps the most volume. Returns
    /// `false` when the candidate collapses.
    fn shrink_away(&self, c: &mut Rect, ci: Id) -> bool {
        let cb = &self.buckets[ci].bounds;
        let mut best: Option<(f64, usize, bool, f64)> = None; // (volume, dim, cut_hi, new_bound)
        for j in 0..self.dims {
            let (clo, chi) = c.interval(j);
            let (olo, ohi) = cb.interval(j);
            // Cut the high side down to olo (excludes ci if olo > clo).
            if olo > clo && olo < chi {
                let vol = c.volume() / (chi - clo).max(EPS_VOL) * (olo - clo);
                if best.as_ref().is_none_or(|b| vol > b.0) {
                    best = Some((vol, j, true, olo));
                }
            }
            // Cut the low side up to ohi.
            if ohi < chi && ohi > clo {
                let vol = c.volume() / (chi - clo).max(EPS_VOL) * (chi - ohi);
                if best.as_ref().is_none_or(|b| vol > b.0) {
                    best = Some((vol, j, false, ohi));
                }
            }
        }
        let Some((vol, dim, cut_hi, bound)) = best else {
            return false;
        };
        if vol <= EPS_VOL {
            return false;
        }
        let mut lo: Vec<f64> = c.lo().to_vec();
        let mut hi: Vec<f64> = c.hi().to_vec();
        if cut_hi {
            hi[dim] = bound;
        } else {
            lo[dim] = bound;
        }
        *c = Rect::new(lo, hi);
        true
    }

    fn alloc(&mut self, bucket: Bucket) -> Id {
        self.live += 1;
        // Reuse a dead slot when available.
        if let Some(id) = self.buckets.iter().position(|b| !b.alive) {
            self.buckets[id] = bucket;
            id
        } else {
            self.buckets.push(bucket);
            self.buckets.len() - 1
        }
    }

    /// Applies the lowest-penalty merge (parent-child or sibling-sibling).
    fn merge_cheapest(&mut self) {
        #[derive(Debug)]
        enum Merge {
            ParentChild(Id),
            Siblings(Id, Id),
        }
        let mut best: Option<(f64, Merge)> = None;
        let consider = |penalty: f64, m: Merge, best: &mut Option<(f64, Merge)>| {
            if best.as_ref().is_none_or(|b| penalty < b.0) {
                *best = Some((penalty, m));
            }
        };

        for id in 0..self.buckets.len() {
            if !self.buckets[id].alive {
                continue;
            }
            // Parent-child candidates.
            if let Some(p) = self.buckets[id].parent {
                let vb = self.exclusive_volume(id);
                let vp = self.exclusive_volume(p);
                let fb = self.buckets[id].frequency;
                let fp = self.buckets[p].frequency;
                let vn = vb + vp;
                let penalty = if vn > EPS_VOL {
                    let dnew = (fb + fp) / vn;
                    (fp - dnew * vp).abs() + (fb - dnew * vb).abs()
                } else {
                    0.0
                };
                consider(penalty, Merge::ParentChild(id), &mut best);
            }
            // Sibling-sibling candidates among this bucket's children.
            // The original paper enumerates all O(k²) sibling pairs; with
            // thousands of children under one parent that becomes cubic
            // (each candidate's shape computation is O(k)) and dominates
            // everything. We restrict candidates to *neighbors in a
            // center-sorted order* — low-penalty merges are between nearby
            // siblings (merging distant ones inflates the bounding box,
            // swallowing other children and raising the penalty), so the
            // O(k) neighbor set contains the good candidates.
            let mut children = self.buckets[id].children.clone();
            children.sort_by(|&a, &b| {
                let ca = self.buckets[a].bounds.center();
                let cb = self.buckets[b].bounds.center();
                ca.partial_cmp(&cb).expect("no NaN bounds")
            });
            for w in children.windows(2) {
                if let Some((penalty, _, _, _)) = self.sibling_merge_shape(id, w[0], w[1]) {
                    consider(penalty, Merge::Siblings(w[0], w[1]), &mut best);
                }
            }
        }

        match best {
            Some((_, Merge::ParentChild(id))) => self.apply_parent_child(id),
            Some((_, Merge::Siblings(a, b))) => self.apply_sibling(a, b),
            None => {
                // Only the root remains; nothing to merge.
                debug_assert_eq!(self.live, 1);
            }
        }
    }

    /// Computes the sibling-merge geometry: returns
    /// `(penalty, merged_box, participants, parent_share)` or `None` when
    /// the merge is not viable (e.g. the grown box swallows the parent).
    fn sibling_merge_shape(&self, parent: Id, a: Id, b: Id) -> Option<(f64, Rect, Vec<Id>, f64)> {
        let mut bn = self.buckets[a]
            .bounds
            .bounding_union(&self.buckets[b].bounds);
        // Grow until no sibling partially intersects.
        loop {
            let mut grown = false;
            for &s in &self.buckets[parent].children {
                if s == a || s == b {
                    continue;
                }
                let sb = &self.buckets[s].bounds;
                if sb.intersects(&bn) && !bn.contains_rect(sb) {
                    bn = bn.bounding_union(sb);
                    grown = true;
                }
            }
            if !grown {
                break;
            }
        }
        if bn == self.buckets[parent].bounds {
            return None; // degenerates to merging everything; skip
        }
        let participants: Vec<Id> = self.buckets[parent]
            .children
            .iter()
            .copied()
            .filter(|&s| s != a && s != b && bn.contains_rect(&self.buckets[s].bounds))
            .collect();
        // Volume absorbed from the parent's exclusive region.
        let mut v_abs = bn.volume();
        for &s in participants.iter().chain([a, b].iter()) {
            v_abs -= self.buckets[s].bounds.volume();
        }
        let v_abs = v_abs.max(0.0);
        let vp = self.exclusive_volume(parent);
        let f_share = if vp > EPS_VOL {
            self.buckets[parent].frequency * (v_abs / vp).min(1.0)
        } else {
            0.0
        };
        let va = self.exclusive_volume(a);
        let vb = self.exclusive_volume(b);
        let fa = self.buckets[a].frequency;
        let fb = self.buckets[b].frequency;
        let vn = va + vb + v_abs;
        let fn_ = fa + fb + f_share;
        let penalty = if vn > EPS_VOL {
            let dnew = fn_ / vn;
            (fa - dnew * va).abs() + (fb - dnew * vb).abs() + (f_share - dnew * v_abs).abs()
        } else {
            0.0
        };
        Some((penalty, bn, participants, f_share))
    }

    /// Merges bucket `id` into its parent.
    fn apply_parent_child(&mut self, id: Id) {
        let p = self.buckets[id].parent.expect("non-root");
        let children = std::mem::take(&mut self.buckets[id].children);
        for &c in &children {
            self.buckets[c].parent = Some(p);
        }
        let f = self.buckets[id].frequency;
        self.buckets[id].alive = false;
        let pb = &mut self.buckets[p];
        pb.frequency += f;
        pb.children.retain(|&c| c != id);
        pb.children.extend(children);
        self.live -= 1;
    }

    /// Merges siblings `a` and `b` into a new bucket.
    fn apply_sibling(&mut self, a: Id, b: Id) {
        let parent = self.buckets[a].parent.expect("non-root sibling");
        let (_, bn, participants, f_share) = self
            .sibling_merge_shape(parent, a, b)
            .expect("shape was viable when selected");
        let fa = self.buckets[a].frequency;
        let fb = self.buckets[b].frequency;
        // New bucket's children: the participants plus a's and b's children.
        let mut new_children = participants.clone();
        new_children.extend(std::mem::take(&mut self.buckets[a].children));
        new_children.extend(std::mem::take(&mut self.buckets[b].children));
        self.buckets[a].alive = false;
        self.buckets[b].alive = false;
        self.live -= 2;
        let merged = self.alloc(Bucket {
            bounds: bn,
            frequency: fa + fb + f_share,
            children: new_children.clone(),
            parent: Some(parent),
            alive: true,
        });
        for &c in &new_children {
            self.buckets[c].parent = Some(merged);
        }
        let pb = &mut self.buckets[parent];
        pb.frequency = (pb.frequency - f_share).max(0.0);
        pb.children
            .retain(|&c| c != a && c != b && !participants.contains(&c));
        pb.children.push(merged);
    }

    /// Model footprint: `2d + 2` scalars per bucket (box + frequency +
    /// linkage), matching the accounting in [`kdesel_types::MemoryBudget`].
    pub fn memory_bytes(&self) -> usize {
        self.live * (2 * self.dims + 2) * std::mem::size_of::<f64>()
    }

    /// Verifies structural invariants (test/debug aid): children lie within
    /// parents, siblings are interior-disjoint, frequencies are
    /// non-negative, liveness bookkeeping is consistent.
    pub fn check_invariants(&self) -> Result<(), String> {
        let live = self.buckets.iter().filter(|b| b.alive).count();
        if live != self.live {
            return Err(format!("live count {live} != {}", self.live));
        }
        for (id, b) in self.buckets.iter().enumerate() {
            if !b.alive {
                continue;
            }
            if b.frequency < 0.0 {
                return Err(format!("bucket {id} negative frequency"));
            }
            for &c in &b.children {
                if !self.buckets[c].alive {
                    return Err(format!("bucket {id} has dead child {c}"));
                }
                if self.buckets[c].parent != Some(id) {
                    return Err(format!("child {c} parent link broken"));
                }
                if !b.bounds.contains_rect(&self.buckets[c].bounds) {
                    return Err(format!("child {c} escapes parent {id}"));
                }
            }
            for (i, &c1) in b.children.iter().enumerate() {
                for &c2 in &b.children[i + 1..] {
                    if self.buckets[c1].bounds.intersects(&self.buckets[c2].bounds) {
                        return Err(format!("siblings {c1} and {c2} overlap"));
                    }
                }
            }
        }
        Ok(())
    }
}

/// `SelectivityEstimator` wrapper that owns a snapshot-consistent counting
/// source. Intended for static tables; the engine drives dynamic scenarios
/// through [`SthHoles::refine`] directly.
pub struct TableSthHoles {
    hist: SthHoles,
    table: Table,
}

impl TableSthHoles {
    /// Builds the histogram over a snapshot of `table`.
    pub fn new(table: Table, config: SthConfig) -> Self {
        let domain = table
            .bounding_box()
            .unwrap_or_else(|| Rect::cube(table.dims(), 0.0, 1.0));
        let hist = SthHoles::new(domain, table.row_count() as u64, config);
        Self { hist, table }
    }

    /// The underlying histogram.
    pub fn histogram(&self) -> &SthHoles {
        &self.hist
    }
}

impl SelectivityEstimator for TableSthHoles {
    fn estimate(&mut self, region: &Rect) -> f64 {
        self.hist.estimate_selectivity(region)
    }

    fn observe(&mut self, feedback: &QueryFeedback) {
        let table = &self.table;
        self.hist.refine(&feedback.region, |r| table.count_in(r));
    }

    fn memory_bytes(&self) -> usize {
        self.hist.memory_bytes()
    }

    fn name(&self) -> &str {
        "stholes"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// 50×50 grid over [0,50)².
    fn grid_table() -> Table {
        let mut data = Vec::new();
        for x in 0..50 {
            for y in 0..50 {
                data.push(x as f64 + 0.5);
                data.push(y as f64 + 0.5);
            }
        }
        Table::from_rows(2, &data)
    }

    fn fresh(table: &Table, max_buckets: usize) -> SthHoles {
        SthHoles::new(
            table.bounding_box().unwrap(),
            table.row_count() as u64,
            SthConfig { max_buckets },
        )
    }

    #[test]
    fn initial_estimate_is_uniform() {
        let t = grid_table();
        let h = fresh(&t, 64);
        // Quarter of the domain → quarter of the tuples.
        let q = Rect::from_intervals(&[(0.5, 25.0), (0.5, 25.0)]);
        let est = h.estimate_selectivity(&q);
        assert!((est - 0.25).abs() < 0.02, "estimate {est}");
    }

    #[test]
    fn refinement_makes_repeated_query_exact() {
        let t = grid_table();
        let mut h = fresh(&t, 64);
        let q = Rect::from_intervals(&[(10.0, 20.0), (10.0, 20.0)]);
        let truth = t.selectivity(&q);
        h.refine(&q, |r| t.count_in(r));
        let est = h.estimate_selectivity(&q);
        assert!(
            (est - truth).abs() < 1e-6,
            "after refinement: {est} vs {truth}"
        );
        h.check_invariants().unwrap();
    }

    #[test]
    fn learns_a_clustered_distribution() {
        // Data concentrated in one corner; feedback teaches the histogram.
        let mut data = Vec::new();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            data.push(rng.gen_range(0.0..10.0));
            data.push(rng.gen_range(0.0..10.0));
        }
        // Domain is 100×100 but data only fills a 10×10 corner.
        data.push(99.0);
        data.push(99.0);
        let t = Table::from_rows(2, &data);
        let mut h = fresh(&t, 64);

        let empty_q = Rect::from_intervals(&[(50.0, 90.0), (50.0, 90.0)]);
        let before = h.estimate_selectivity(&empty_q);
        assert!(before > 0.1, "uniform assumption should overestimate");

        // Systematic exploration: a 5×5 sweep of 20×20 tiles covers the
        // domain, so every region receives feedback at least once.
        for tx in 0..5 {
            for ty in 0..5 {
                let q = Rect::from_intervals(&[
                    (tx as f64 * 20.0, (tx + 1) as f64 * 20.0),
                    (ty as f64 * 20.0, (ty + 1) as f64 * 20.0),
                ]);
                h.refine(&q, |r| t.count_in(r));
                h.check_invariants().unwrap();
            }
        }
        let after = h.estimate_selectivity(&empty_q);
        assert!(after < 0.01, "learned estimate {after} vs initial {before}");
    }

    #[test]
    fn bucket_budget_is_enforced() {
        let t = grid_table();
        let mut h = fresh(&t, 8);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let cx = rng.gen_range(5.0..45.0);
            let cy = rng.gen_range(5.0..45.0);
            let q = Rect::from_intervals(&[(cx - 3.0, cx + 3.0), (cy - 3.0, cy + 3.0)]);
            h.refine(&q, |r| t.count_in(r));
            assert!(
                h.bucket_count() <= 8,
                "budget exceeded: {}",
                h.bucket_count()
            );
            h.check_invariants().unwrap();
        }
    }

    #[test]
    fn total_frequency_tracks_relation_size() {
        let t = grid_table();
        let mut h = fresh(&t, 32);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..40 {
            let cx = rng.gen_range(5.0..45.0);
            let q = Rect::from_intervals(&[(cx - 4.0, cx + 4.0), (cx - 4.0, cx + 4.0)]);
            h.refine(&q, |r| t.count_in(r));
        }
        let total = h.total_frequency();
        let rows = t.row_count() as f64;
        assert!(
            (total - rows).abs() / rows < 0.25,
            "total frequency {total} vs rows {rows}"
        );
    }

    #[test]
    fn queries_outside_root_grow_the_domain() {
        let t = grid_table();
        let mut h = fresh(&t, 32);
        let q = Rect::from_intervals(&[(-100.0, -50.0), (-100.0, -50.0)]);
        h.refine(&q, |r| t.count_in(r));
        h.check_invariants().unwrap();
        // The region is empty; after refinement its estimate must be ~0.
        let est = h.estimate_selectivity(&q);
        assert!(est < 1e-9, "estimate {est}");
    }

    #[test]
    fn estimate_is_a_selectivity() {
        let t = grid_table();
        let mut h = fresh(&t, 16);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..30 {
            let cx = rng.gen_range(0.0..50.0);
            let w = rng.gen_range(0.1..30.0);
            let q = Rect::from_intervals(&[(cx - w, cx + w), (cx - w, cx + w)]);
            let est = h.estimate_selectivity(&q);
            assert!((0.0..=1.0).contains(&est));
            h.refine(&q, |r| t.count_in(r));
        }
    }

    #[test]
    fn trait_wrapper_refines_on_observe() {
        let t = grid_table();
        let rows = t.row_count() as u64;
        let mut est = TableSthHoles::new(t, SthConfig { max_buckets: 64 });
        let q = Rect::from_intervals(&[(0.0, 5.0), (0.0, 5.0)]);
        let before = est.estimate(&q);
        let truth = 25.0 * 25.0 / 2500.0 / 25.0; // 5×5 cells of 2500 → sel 0.01
        let _ = truth;
        let fb = QueryFeedback::from_counts(q.clone(), before, 25, rows);
        est.observe(&fb);
        let after = est.estimate(&q);
        assert!((after - 0.01).abs() < 1e-6, "after {after}");
        assert_eq!(est.name(), "stholes");
        assert!(est.memory_bytes() > 0);
    }

    #[test]
    fn drilling_into_drilled_regions_nests() {
        let t = grid_table();
        let mut h = fresh(&t, 64);
        let outer = Rect::from_intervals(&[(10.0, 30.0), (10.0, 30.0)]);
        let inner = Rect::from_intervals(&[(15.0, 20.0), (15.0, 20.0)]);
        h.refine(&outer, |r| t.count_in(r));
        h.refine(&inner, |r| t.count_in(r));
        h.check_invariants().unwrap();
        assert!(h.bucket_count() >= 3);
        let est = h.estimate_selectivity(&inner);
        let truth = t.selectivity(&inner);
        assert!((est - truth).abs() < 1e-6);
    }

    #[test]
    fn overlapping_queries_shrink_candidates() {
        let t = grid_table();
        let mut h = fresh(&t, 64);
        let q1 = Rect::from_intervals(&[(10.0, 25.0), (10.0, 25.0)]);
        let q2 = Rect::from_intervals(&[(20.0, 35.0), (20.0, 35.0)]); // partial overlap
        h.refine(&q1, |r| t.count_in(r));
        h.refine(&q2, |r| t.count_in(r));
        h.check_invariants().unwrap();
        for q in [&q1, &q2] {
            let est = h.estimate_selectivity(q);
            let truth = t.selectivity(q);
            assert!((est - truth).abs() < 0.05, "est {est} vs {truth}");
        }
    }

    #[test]
    fn merging_preserves_total_frequency() {
        let t = grid_table();
        let mut h = fresh(&t, 4); // tiny budget → constant merging
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..30 {
            let cx = rng.gen_range(5.0..45.0);
            let cy = rng.gen_range(5.0..45.0);
            let q = Rect::from_intervals(&[(cx - 3.0, cx + 3.0), (cy - 3.0, cy + 3.0)]);
            let before = h.total_frequency();
            let live_before = h.bucket_count();
            h.refine(&q, |r| t.count_in(r));
            h.check_invariants().unwrap();
            // Merging alone must not change total frequency; drilling may
            // (it installs exact counts), so only check when no drill
            // happened (bucket count unchanged at budget).
            let _ = (before, live_before);
        }
        assert!(h.bucket_count() <= 4);
    }
}
