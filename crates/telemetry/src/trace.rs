//! Trace and span identity: the propagation context that turns flat
//! events into a per-request tree.
//!
//! A *trace* follows one logical request across threads (front door →
//! coalescing scheduler → fused device launch → feedback maintenance);
//! a *span* is one timed operation inside it. IDs are minted from one
//! process-global counter, so they are unique within a process and —
//! unlike random IDs — deterministic enough for tests to reason about.
//!
//! Conventions kept deliberately simple (and relied on by the serve
//! capture/replay loader):
//!
//! * the **root span** of a trace reuses the trace ID as its span ID and
//!   has `parent == 0`;
//! * child spans mint a fresh span ID and point `parent` at their
//!   parent's span ID;
//! * `trace == 0` means "untraced" — instrumentation for such work may
//!   be skipped entirely.

use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Mints a fresh nonzero trace/span ID. Cheap (one relaxed atomic), so
/// front doors can mint unconditionally even with telemetry disabled.
#[inline]
pub fn next_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// Identity of one span within a trace, carried across thread hops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanContext {
    /// Trace this span belongs to (0 = untraced).
    pub trace: u64,
    /// This span's ID (root spans reuse the trace ID).
    pub span: u64,
    /// Parent span ID (0 for the root).
    pub parent: u64,
}

impl SpanContext {
    /// The root span of a fresh trace: `span == trace`, no parent.
    pub fn root() -> Self {
        let trace = next_id();
        Self {
            trace,
            span: trace,
            parent: 0,
        }
    }

    /// Reconstructs the root context of an existing trace ID (used when
    /// the ID traveled without its context, e.g. through a channel).
    pub fn root_of(trace: u64) -> Self {
        Self {
            trace,
            span: trace,
            parent: 0,
        }
    }

    /// A child span of this one, with a freshly minted span ID.
    pub fn child(&self) -> Self {
        Self {
            trace: self.trace,
            span: next_id(),
            parent: self.span,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_nonzero() {
        let a = next_id();
        let b = next_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn root_reuses_trace_id_and_children_chain() {
        let root = SpanContext::root();
        assert_eq!(root.span, root.trace);
        assert_eq!(root.parent, 0);
        let child = root.child();
        assert_eq!(child.trace, root.trace);
        assert_eq!(child.parent, root.span);
        assert_ne!(child.span, root.span);
        let grandchild = child.child();
        assert_eq!(grandchild.parent, child.span);
        assert_eq!(grandchild.trace, root.trace);
    }

    #[test]
    fn root_of_reconstructs_without_minting() {
        let ctx = SpanContext::root_of(42);
        assert_eq!(ctx.trace, 42);
        assert_eq!(ctx.span, 42);
        assert_eq!(ctx.parent, 0);
    }
}
