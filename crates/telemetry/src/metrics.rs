//! Counters, gauges, and log-linear histograms.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monotonic event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins `f64` value (stored as bits).
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Default for Gauge {
    fn default() -> Self {
        Self(AtomicU64::new(0.0f64.to_bits()))
    }
}

impl Gauge {
    /// Replaces the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `v` (compare-exchange loop; gauges are low-frequency).
    pub fn add(&self, v: f64) {
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + v).to_bits();
            match self
                .0
                .compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Log-linear histogram over positive values (seconds, typically).
///
/// Bucketing uses the top 16 bits of the IEEE-754 representation —
/// the exponent plus the 4 leading mantissa bits — giving 16 linear
/// sub-buckets per power of two (≤ ~4.5% relative width). The tracked
/// range is `[1 ns, ~4100 s]`; values outside clamp to the edge
/// buckets. `min`/`max` are tracked exactly.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum in femto-units (1e-15) to keep integer atomics; saturates far
    /// beyond any realistic accumulation of wall-clock seconds.
    sum_femto: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

/// Smallest tracked value (1 ns when values are seconds).
const LOW: f64 = 1e-9;
/// Largest tracked value (≈ 68 min when values are seconds).
const HIGH: f64 = 4096.0;

fn offset() -> usize {
    (LOW.to_bits() >> 48) as usize
}

fn bucket_count() -> usize {
    ((HIGH.to_bits() >> 48) as usize) - offset() + 1
}

fn bucket_of(v: f64) -> usize {
    let clamped = v.clamp(LOW, HIGH);
    ((clamped.to_bits() >> 48) as usize) - offset()
}

/// Midpoint of the bucket's value range.
fn bucket_value(index: usize) -> f64 {
    let lo = f64::from_bits(((offset() + index) as u64) << 48);
    let hi = f64::from_bits(((offset() + index + 1) as u64) << 48);
    0.5 * (lo + hi)
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: (0..bucket_count()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_femto: AtomicU64::new(0),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one observation. Negative/NaN values are ignored.
    pub fn record(&self, v: f64) {
        if v.is_nan() || v < 0.0 {
            return;
        }
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_femto
            .fetch_add((v * 1e15) as u64, Ordering::Relaxed);
        // Positive f64 bit patterns order like the values themselves.
        self.min_bits.fetch_min(v.to_bits(), Ordering::Relaxed);
        self.max_bits.fetch_max(v.to_bits(), Ordering::Relaxed);
    }

    /// Starts a [`crate::Span`] recording into this histogram (always
    /// active — use [`crate::span`] for the globally gated variant).
    pub fn span(self: &Arc<Self>) -> crate::Span {
        if crate::enabled() {
            crate::Span::active(Arc::clone(self))
        } else {
            crate::Span::noop()
        }
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0 ≤ q ≤ 1`) from bucket midpoints, except the
    /// exact extremes: `q = 0` returns the true min, `q = 1` the true
    /// max. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        if q <= 0.0 {
            return Some(f64::from_bits(self.min_bits.load(Ordering::Relaxed)));
        }
        if q >= 1.0 {
            return Some(f64::from_bits(self.max_bits.load(Ordering::Relaxed)));
        }
        let min = f64::from_bits(self.min_bits.load(Ordering::Relaxed));
        let max = f64::from_bits(self.max_bits.load(Ordering::Relaxed));
        let target = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= target {
                // A bucket midpoint can stray past the exact extremes
                // (e.g. p99 above the true max); clamp so quantiles are
                // always consistent with min/max.
                return Some(bucket_value(i).clamp(min, max));
            }
        }
        Some(max)
    }

    /// Count, mean, and the standard latency quantiles.
    pub fn summary(&self) -> HistogramSummary {
        let count = self.count();
        let sum = self.sum_femto.load(Ordering::Relaxed) as f64 * 1e-15;
        HistogramSummary {
            count,
            mean: if count == 0 { 0.0 } else { sum / count as f64 },
            p50: self.quantile(0.5).unwrap_or(0.0),
            p90: self.quantile(0.9).unwrap_or(0.0),
            p95: self.quantile(0.95).unwrap_or(0.0),
            p99: self.quantile(0.99).unwrap_or(0.0),
            max: self.quantile(1.0).unwrap_or(0.0),
        }
    }
}

/// Point-in-time view of a histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Observations recorded.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (bucket midpoint).
    pub p50: f64,
    /// 90th percentile (bucket midpoint).
    pub p90: f64,
    /// 95th percentile (bucket midpoint).
    pub p95: f64,
    /// 99th percentile (bucket midpoint).
    pub p99: f64,
    /// Exact maximum.
    pub max: f64,
}

/// What kind of metric a [`MetricLine`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic count.
    Counter,
    /// Instantaneous value.
    Gauge,
    /// Latency distribution.
    Histogram,
}

/// One row of a metrics dump.
#[derive(Debug, Clone)]
pub struct MetricLine {
    /// Metric name.
    pub name: String,
    /// Metric kind.
    pub kind: MetricKind,
    /// Counter value (counters only).
    pub count: u64,
    /// Gauge value (gauges only).
    pub value: f64,
    /// Distribution summary (histograms only).
    pub histogram: Option<HistogramSummary>,
}

/// Named metric store. Handles are `Arc`s — resolve once, bump forever
/// without re-locking the registry.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// Creates an empty registry (the process-global one lives behind
    /// [`crate::registry`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolves (or creates) a counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        resolve(&self.counters, name)
    }

    /// Resolves (or creates) a gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        resolve(&self.gauges, name)
    }

    /// Resolves (or creates) a histogram.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        resolve(&self.histograms, name)
    }

    /// All metrics, name-sorted within each kind, skipping never-touched
    /// histograms (zero observations) but keeping zero counters — a zero
    /// kernel count is itself informative.
    pub fn lines(&self) -> Vec<MetricLine> {
        let mut out = Vec::new();
        for (name, c) in self.counters.lock().unwrap().iter() {
            out.push(MetricLine {
                name: name.clone(),
                kind: MetricKind::Counter,
                count: c.get(),
                value: 0.0,
                histogram: None,
            });
        }
        for (name, g) in self.gauges.lock().unwrap().iter() {
            out.push(MetricLine {
                name: name.clone(),
                kind: MetricKind::Gauge,
                count: 0,
                value: g.get(),
                histogram: None,
            });
        }
        for (name, h) in self.histograms.lock().unwrap().iter() {
            let summary = h.summary();
            if summary.count == 0 {
                continue;
            }
            out.push(MetricLine {
                name: name.clone(),
                kind: MetricKind::Histogram,
                count: summary.count,
                value: 0.0,
                histogram: Some(summary),
            });
        }
        out
    }

    /// Zeroes nothing but forgets everything: drops all metric entries.
    /// Existing handles keep working but are no longer listed.
    pub fn clear(&self) {
        self.counters.lock().unwrap().clear();
        self.gauges.lock().unwrap().clear();
        self.histograms.lock().unwrap().clear();
    }
}

fn resolve<T: Default>(map: &Mutex<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    let mut map = map.lock().unwrap();
    if let Some(existing) = map.get(name) {
        return Arc::clone(existing);
    }
    let created = Arc::new(T::default());
    map.insert(name.to_string(), Arc::clone(&created));
    created
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::default();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn concurrent_increments_are_lossless() {
        // The production pattern: one shared handle bumped from the same
        // worker pool the estimator kernels use. Every increment must
        // land — a plain (non-atomic) counter would drop some.
        let counter = crate::registry().counter("test.concurrent_increments");
        let before = counter.get();
        const PER_TASK: u64 = 7;
        let n_tasks = 10_000;
        let _: Vec<()> = kdesel_par::par_map_collect(n_tasks, |_| {
            for _ in 0..PER_TASK {
                counter.inc();
            }
        });
        assert_eq!(counter.get() - before, n_tasks as u64 * PER_TASK);
    }

    #[test]
    fn gauge_set_and_add() {
        let g = Gauge::default();
        g.set(1.5);
        g.add(0.75);
        assert_eq!(g.get(), 2.25);
    }

    #[test]
    fn histogram_quantiles_on_known_inputs() {
        let h = Histogram::default();
        // 1..=100 ms: p50 ≈ 50 ms, p90 ≈ 90 ms, p99 ≈ 99 ms, max = 100 ms.
        for i in 1..=100 {
            h.record(i as f64 * 1e-3);
        }
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert!((s.p50 - 0.050).abs() / 0.050 < 0.05, "p50 {}", s.p50);
        assert!((s.p90 - 0.090).abs() / 0.090 < 0.05, "p90 {}", s.p90);
        assert!((s.p95 - 0.095).abs() / 0.095 < 0.05, "p95 {}", s.p95);
        assert!((s.p99 - 0.099).abs() / 0.099 < 0.05, "p99 {}", s.p99);
        assert_eq!(s.max, 0.100, "max is exact");
        assert!((s.mean - 0.0505).abs() < 1e-4, "mean {}", s.mean);
        assert_eq!(h.quantile(0.0), Some(0.001), "min is exact");
    }

    #[test]
    fn histogram_single_value_quantiles_collapse() {
        let h = Histogram::default();
        h.record(0.25);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            let v = h.quantile(q).unwrap();
            assert!((v - 0.25).abs() / 0.25 < 0.05, "q{q}: {v}");
        }
    }

    #[test]
    fn histogram_clamps_out_of_range() {
        let h = Histogram::default();
        h.record(1e-12); // below range → lowest bucket
        h.record(1e6); // above range → highest bucket
        h.record(f64::NAN); // dropped
        h.record(-1.0); // dropped
        assert_eq!(h.count(), 2);
        assert!(h.quantile(0.0).unwrap() <= 1e-9 + 1e-15);
        assert_eq!(h.quantile(1.0), Some(1e6), "true max is exact");
    }

    #[test]
    fn registry_resolves_same_handle() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.inc();
        assert_eq!(r.counter("x").get(), 2);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn lines_skip_empty_histograms_keep_zero_counters() {
        let r = Registry::new();
        r.counter("zero");
        r.histogram("empty");
        r.histogram("used").record(0.5);
        let lines = r.lines();
        assert!(lines.iter().any(|l| l.name == "zero" && l.count == 0));
        assert!(!lines.iter().any(|l| l.name == "empty"));
        assert!(lines.iter().any(|l| l.name == "used"));
    }

    #[test]
    fn bucket_math_is_monotone() {
        let mut last = 0;
        for exp in -25..10 {
            let v = 2.0f64.powi(exp);
            let b = bucket_of(v);
            assert!(b >= last, "bucket regressed at 2^{exp}");
            last = b;
            let mid = bucket_value(b);
            assert!((mid - v).abs() / v < 0.07, "midpoint {mid} far from {v}");
        }
    }
}
