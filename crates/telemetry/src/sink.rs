//! Event sinks: where structured events go.

use std::collections::VecDeque;
use std::io::Write;
use std::path::Path;
use std::sync::Mutex;

use crate::event::Event;

/// Receives every emitted [`Event`]. Implementations must be cheap and
/// non-blocking where possible — `emit` runs on the instrumented thread.
pub trait EventSink: Send + Sync {
    /// Handles one event.
    fn emit(&self, event: &Event);

    /// Flushes buffered output (default: nothing to do).
    fn flush(&self) {}
}

/// Discards everything. The behavioral equivalent of no sink, useful
/// for exercising the tracing path without output.
#[derive(Debug, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn emit(&self, _event: &Event) {}
}

/// Bounded in-memory buffer keeping the most recent events — the test
/// sink. Overflow drops the oldest event.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    buffer: Mutex<VecDeque<Event>>,
}

impl RingSink {
    /// Creates a ring holding at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            buffer: Mutex::new(VecDeque::with_capacity(capacity.max(1))),
        }
    }

    /// Takes all buffered events, oldest first.
    pub fn drain(&self) -> Vec<Event> {
        self.buffer.lock().unwrap().drain(..).collect()
    }

    /// Number of currently buffered events.
    pub fn len(&self) -> usize {
        self.buffer.lock().unwrap().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl EventSink for RingSink {
    fn emit(&self, event: &Event) {
        let mut buffer = self.buffer.lock().unwrap();
        if buffer.len() == self.capacity {
            buffer.pop_front();
        }
        buffer.push_back(event.clone());
    }
}

/// Schema version stamped into every [`JsonlSink`] line as a leading
/// `"v"` field. Readers (the serve capture/replay loader) reject lines
/// with a different version instead of silently mis-parsing, and treat
/// an unparsable final line as a truncated file.
pub const JSONL_SCHEMA_VERSION: u32 = 1;

/// Writes one JSON object per line to a buffered writer (file or
/// stderr). Every line carries a leading `"v"` schema-version field
/// ([`JSONL_SCHEMA_VERSION`]); lines are flushed on drop and on
/// [`EventSink::flush`].
pub struct JsonlSink {
    writer: Mutex<Box<dyn Write + Send>>,
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink").finish_non_exhaustive()
    }
}

impl JsonlSink {
    /// Creates (truncating) `path` and writes events there.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self {
            writer: Mutex::new(Box::new(std::io::BufWriter::new(file))),
        })
    }

    /// Writes events to stderr.
    pub fn stderr() -> Self {
        Self {
            writer: Mutex::new(Box::new(std::io::stderr())),
        }
    }

    /// Wraps an arbitrary writer (used by tests).
    pub fn from_writer(writer: Box<dyn Write + Send>) -> Self {
        Self {
            writer: Mutex::new(writer),
        }
    }
}

impl EventSink for JsonlSink {
    fn emit(&self, event: &Event) {
        // Inject the schema version as the first field: `to_json` always
        // yields `{"event":...}`, so splicing after the brace is safe.
        let json = event.to_json();
        let mut line = String::with_capacity(json.len() + 8);
        line.push_str("{\"v\":");
        line.push_str(&JSONL_SCHEMA_VERSION.to_string());
        line.push(',');
        line.push_str(&json[1..]);
        line.push('\n');
        let mut writer = self.writer.lock().unwrap();
        // Telemetry must never take the process down: I/O errors are
        // swallowed (a broken trace file is an inconvenience, a panicked
        // estimator is a bug).
        let _ = writer.write_all(line.as_bytes());
    }

    fn flush(&self) {
        let _ = self.writer.lock().unwrap().flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Value;
    use std::sync::Arc;

    fn event(name: &'static str, n: u64) -> Event {
        Event {
            name,
            at_seconds: 0.0,
            fields: vec![("n", Value::U64(n))],
        }
    }

    #[test]
    fn ring_keeps_newest_on_overflow() {
        let ring = RingSink::with_capacity(2);
        ring.emit(&event("a", 1));
        ring.emit(&event("b", 2));
        ring.emit(&event("c", 3));
        let events = ring.drain();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "b");
        assert_eq!(events[1].name, "c");
        assert!(ring.is_empty());
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        #[derive(Clone, Default)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let shared = Shared::default();
        let sink = JsonlSink::from_writer(Box::new(shared.clone()));
        sink.emit(&event("a", 1));
        sink.emit(&event("b", 2));
        sink.flush();
        let bytes = shared.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], r#"{"v":1,"event":"a","t":0.0,"n":1}"#);
        assert_eq!(lines[1], r#"{"v":1,"event":"b","t":0.0,"n":2}"#);
    }

    #[test]
    fn jsonl_sink_flushes_on_drop() {
        // A capture must survive `drop` without an explicit flush —
        // truncated tails should only come from crashes, not clean exits.
        #[derive(Clone, Default)]
        struct Counting(Arc<Mutex<(Vec<u8>, usize)>>);
        impl Write for Counting {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().0.extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                self.0.lock().unwrap().1 += 1;
                Ok(())
            }
        }
        let shared = Counting::default();
        {
            let sink = JsonlSink::from_writer(Box::new(shared.clone()));
            sink.emit(&event("a", 1));
        } // dropped here, never explicitly flushed
        let (bytes, flushes) = {
            let guard = shared.0.lock().unwrap();
            (guard.0.clone(), guard.1)
        };
        assert!(flushes >= 1, "drop must flush the writer");
        assert!(String::from_utf8(bytes).unwrap().ends_with("\"n\":1}\n"));
    }
}
