//! Prometheus-style text exposition of the metrics registry.
//!
//! Renders every counter, gauge, and touched histogram as the plain-text
//! format Prometheus scrapes (`# TYPE` headers, `name value` samples,
//! histograms as summaries with `quantile` labels plus `_sum`/`_count`).
//! This is a point-in-time snapshot, not a server: `kdesel-serve` dumps
//! it on demand and at shutdown so an operator — or a scrape shim — can
//! read convergence state without attaching a debugger.

use crate::metrics::{MetricKind, Registry};

/// Quantiles exported per histogram, chosen to match the latency
/// percentiles in [`crate::HistogramSummary`].
const QUANTILES: [(f64, &str); 4] = [(0.5, "0.5"), (0.9, "0.9"), (0.95, "0.95"), (0.99, "0.99")];

/// Maps a registry metric name (`serve.request_seconds`) to a Prometheus
/// identifier (`kdesel_serve_request_seconds`): every character outside
/// `[a-zA-Z0-9_]` becomes `_`, and the `kdesel_` prefix namespaces the
/// exposition.
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 8);
    out.push_str("kdesel_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() || c == '_' {
            c
        } else {
            '_'
        });
    }
    out
}

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v:?}"));
    } else if v.is_nan() {
        out.push_str("NaN");
    } else if v > 0.0 {
        out.push_str("+Inf");
    } else {
        out.push_str("-Inf");
    }
}

/// Escapes a label value per the Prometheus text-format spec: inside the
/// double-quoted label value, backslash, double-quote, and line feed must
/// be written as `\\`, `\"`, and `\n`. Everything else passes through
/// (label values are arbitrary UTF-8).
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Writes one `name{label="value"} v` sample, escaping the label value.
fn push_labeled_sample(out: &mut String, name: &str, label: &str, value: &str, v: f64) {
    out.push_str(&format!(
        "{name}{{{label}=\"{}\"}} ",
        escape_label_value(value)
    ));
    push_f64(out, v);
    out.push('\n');
}

/// Renders `registry` in the Prometheus text exposition format. Counters
/// and gauges are one sample each; histograms become summaries with
/// p50/p90/p95/p99 `quantile` labels plus `_sum` and `_count` samples.
pub fn prometheus_text(registry: &Registry) -> String {
    let mut out = String::new();
    for line in registry.lines() {
        let name = prometheus_name(&line.name);
        match line.kind {
            MetricKind::Counter => {
                out.push_str(&format!("# TYPE {name} counter\n{name} {}\n", line.count));
            }
            MetricKind::Gauge => {
                out.push_str(&format!("# TYPE {name} gauge\n{name} "));
                push_f64(&mut out, line.value);
                out.push('\n');
            }
            MetricKind::Histogram => {
                let summary = line.histogram.expect("histogram line has a summary");
                out.push_str(&format!("# TYPE {name} summary\n"));
                let quantile_values = [summary.p50, summary.p90, summary.p95, summary.p99];
                for ((_, label), value) in QUANTILES.iter().zip(quantile_values) {
                    push_labeled_sample(&mut out, &name, "quantile", label, value);
                }
                out.push_str(&format!("{name}_sum "));
                push_f64(&mut out, summary.mean * summary.count as f64);
                out.push('\n');
                out.push_str(&format!("{name}_count {}\n", summary.count));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_sanitization_prefixes_and_replaces() {
        assert_eq!(
            prometheus_name("serve.request_seconds"),
            "kdesel_serve_request_seconds"
        );
        assert_eq!(
            prometheus_name("serve.model.orders-price/qty.qerror_p99"),
            "kdesel_serve_model_orders_price_qty_qerror_p99"
        );
    }

    #[test]
    fn exposition_covers_all_metric_kinds() {
        let r = Registry::new();
        r.counter("test.requests").add(7);
        r.gauge("test.depth").set(2.5);
        for i in 1..=100 {
            r.histogram("test.latency").record(i as f64 * 1e-3);
        }
        let text = prometheus_text(&r);
        assert!(text.contains("# TYPE kdesel_test_requests counter\nkdesel_test_requests 7\n"));
        assert!(text.contains("# TYPE kdesel_test_depth gauge\nkdesel_test_depth 2.5\n"));
        assert!(text.contains("# TYPE kdesel_test_latency summary\n"));
        for q in ["0.5", "0.9", "0.95", "0.99"] {
            assert!(
                text.contains(&format!("kdesel_test_latency{{quantile=\"{q}\"}} ")),
                "missing quantile {q} in:\n{text}"
            );
        }
        assert!(text.contains("kdesel_test_latency_count 100\n"));
        assert!(text.contains("kdesel_test_latency_sum "));
    }

    #[test]
    fn empty_histograms_are_omitted() {
        let r = Registry::new();
        r.histogram("test.untouched");
        assert!(!prometheus_text(&r).contains("untouched"));
    }

    #[test]
    fn non_finite_gauges_render_prometheus_style() {
        let r = Registry::new();
        r.gauge("test.inf").set(f64::INFINITY);
        r.gauge("test.neg_inf").set(f64::NEG_INFINITY);
        r.gauge("test.nan").set(f64::NAN);
        let text = prometheus_text(&r);
        assert!(text.contains("kdesel_test_inf +Inf\n"));
        assert!(text.contains("kdesel_test_neg_inf -Inf\n"));
        assert!(text.contains("kdesel_test_nan NaN\n"));
    }

    #[test]
    fn hostile_label_values_are_escaped_to_spec() {
        // Backslash first, so the escapes it introduces are not re-escaped.
        assert_eq!(escape_label_value(r"a\b"), r"a\\b");
        assert_eq!(escape_label_value("say \"hi\""), "say \\\"hi\\\"");
        assert_eq!(escape_label_value("two\nlines"), "two\\nlines");
        assert_eq!(
            escape_label_value("\\\"\n"),
            "\\\\\\\"\\n",
            "all three specials together"
        );
        // Untouched: arbitrary UTF-8 and other control-ish chars.
        assert_eq!(escape_label_value("q=0.5,héllo\t"), "q=0.5,héllo\t");
    }

    #[test]
    fn labeled_samples_render_escaped_and_parseable() {
        let mut out = String::new();
        push_labeled_sample(&mut out, "kdesel_x", "key", "a\\b\"c\nd", 1.5);
        assert_eq!(out, "kdesel_x{key=\"a\\\\b\\\"c\\nd\"} 1.5\n");
        // One physical line: the raw newline in the value must not split
        // the sample.
        assert_eq!(out.lines().count(), 1);
    }
}
