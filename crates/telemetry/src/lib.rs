//! Observability for the kdesel estimator stack.
//!
//! The paper's claims are about *trajectories* — bandwidth converging
//! under RMSprop (§4.1), Karma reshaping the sample (§5.6), estimation
//! overhead staying flat until compute dominates (Figure 7). This crate
//! is the substrate that makes those trajectories visible:
//!
//! * a process-global [`Registry`] of named [`Counter`]s, [`Gauge`]s,
//!   and log-linear latency [`Histogram`]s (p50/p90/p99/max);
//! * a [`Span`] RAII timer recording wall time into a histogram;
//! * an [`EventSink`] trait for structured events, with a no-op default,
//!   a [`RingSink`] for tests, and a [`JsonlSink`] writing one
//!   hand-escaped JSON object per line (no serde);
//! * a global enable flag: with telemetry disabled (the default) spans
//!   skip the clock entirely and events are dropped before any field is
//!   materialized, so the estimate hot path is unchanged.
//!
//! Everything is `std`-only and lock-light: counters and histogram
//! buckets are atomics; the registry map itself is only locked on handle
//! resolution (done once per call site, not per operation).

mod event;
mod expo;
mod json;
mod metrics;
mod sink;
mod trace;

pub use event::{Event, EventBuilder, Value};
pub use expo::{escape_label_value, prometheus_name, prometheus_text};
pub use metrics::{Counter, Gauge, Histogram, HistogramSummary, MetricKind, MetricLine, Registry};
pub use sink::{EventSink, JsonlSink, NullSink, RingSink, JSONL_SCHEMA_VERSION};
pub use trace::{next_id as next_trace_id, SpanContext};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static HAS_SINK: AtomicBool = AtomicBool::new(false);

fn sink_slot() -> &'static Mutex<Option<Arc<dyn EventSink>>> {
    static SINK: OnceLock<Mutex<Option<Arc<dyn EventSink>>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

/// Process start reference for event timestamps (monotonic, seconds).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Seconds since the telemetry epoch (first use in this process).
pub fn now_seconds() -> f64 {
    epoch().elapsed().as_secs_f64()
}

/// Whether instrumentation is live. When `false` (the default), spans
/// don't read the clock and events are dropped unbuilt.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns instrumentation on or off globally.
pub fn set_enabled(on: bool) {
    if on {
        epoch(); // pin the timestamp origin before the first event
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// The process-global metrics registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

/// Resolves (or creates) a named counter. Resolve once per call site
/// and reuse the handle on hot paths.
pub fn counter(name: &str) -> Arc<Counter> {
    registry().counter(name)
}

/// Resolves (or creates) a named gauge.
pub fn gauge(name: &str) -> Arc<Gauge> {
    registry().gauge(name)
}

/// Resolves (or creates) a named histogram.
pub fn histogram(name: &str) -> Arc<Histogram> {
    registry().histogram(name)
}

/// Starts a span recording into the named histogram on drop. No-op
/// (and clock-free) while telemetry is disabled.
pub fn span(name: &str) -> Span {
    if enabled() {
        Span {
            start: Some(Instant::now()),
            histogram: Some(histogram(name)),
        }
    } else {
        Span {
            start: None,
            histogram: None,
        }
    }
}

/// RAII wall-clock timer; records elapsed seconds into its histogram
/// when dropped. Obtain via [`span`] or [`Histogram::span`].
#[derive(Debug)]
pub struct Span {
    start: Option<Instant>,
    histogram: Option<Arc<Histogram>>,
}

impl Span {
    pub(crate) fn active(histogram: Arc<Histogram>) -> Self {
        Self {
            start: Some(Instant::now()),
            histogram: Some(histogram),
        }
    }

    pub(crate) fn noop() -> Self {
        Self {
            start: None,
            histogram: None,
        }
    }

    /// Elapsed seconds so far (`0.0` for a disabled span).
    pub fn elapsed_seconds(&self) -> f64 {
        self.start.map_or(0.0, |s| s.elapsed().as_secs_f64())
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let (Some(start), Some(hist)) = (self.start, self.histogram.as_ref()) {
            hist.record(start.elapsed().as_secs_f64());
        }
    }
}

/// Installs (or clears) the event sink. Implies nothing about
/// [`enabled`] — callers typically pair `set_sink(..)` with
/// `set_enabled(true)`.
pub fn set_sink(sink: Option<Arc<dyn EventSink>>) {
    let mut slot = sink_slot().lock().unwrap();
    HAS_SINK.store(sink.is_some(), Ordering::Relaxed);
    *slot = sink;
}

/// Whether an event sink is installed and telemetry is enabled — gate
/// any expensive field computation (norms, vector snapshots) on this.
#[inline]
pub fn tracing() -> bool {
    enabled() && HAS_SINK.load(Ordering::Relaxed)
}

/// Starts a structured event. While [`tracing`] is false the builder is
/// inert: fields are dropped without allocation.
pub fn event(name: &'static str) -> EventBuilder {
    EventBuilder::new(name, tracing())
}

/// Flushes the installed sink, if any. Call before process exit when a
/// buffered sink (e.g. [`JsonlSink`]) is installed globally — a global
/// sink is never dropped, so buffered lines would otherwise be lost.
pub fn flush_sink() {
    let sink = sink_slot().lock().unwrap().clone();
    if let Some(sink) = sink {
        sink.flush();
    }
}

/// Sends a pre-built [`Event`] to the installed sink. Dropped while
/// [`tracing`] is false, mirroring [`event`]'s gating. This is the path
/// for instrumentation that constructs events directly (e.g. span
/// records fanned out to both a global sink and a capture file) instead
/// of through the builder.
pub fn emit_event(event: Event) {
    if tracing() {
        dispatch(event);
    }
}

pub(crate) fn dispatch(event: Event) {
    let sink = sink_slot().lock().unwrap().clone();
    if let Some(sink) = sink {
        sink.emit(&event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global enable flag and sink are process-wide; tests touching
    // them share one lock to avoid cross-talk under the parallel test
    // runner.
    pub(crate) fn global_guard() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        GUARD.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_span_is_inert() {
        let _g = global_guard();
        set_enabled(false);
        let before = registry().histogram("test.inert").summary().count;
        {
            let _span = span("test.inert");
        }
        assert_eq!(registry().histogram("test.inert").summary().count, before);
    }

    #[test]
    fn enabled_span_records() {
        let _g = global_guard();
        set_enabled(true);
        let hist = registry().histogram("test.span_records");
        let before = hist.summary().count;
        {
            let _span = span("test.span_records");
        }
        set_enabled(false);
        assert_eq!(hist.summary().count, before + 1);
    }

    #[test]
    fn events_reach_the_installed_sink() {
        let _g = global_guard();
        let ring = Arc::new(RingSink::with_capacity(8));
        set_sink(Some(ring.clone()));
        set_enabled(true);
        event("unit")
            .f64("x", 1.5)
            .u64("n", 7)
            .str("who", "tester")
            .emit();
        set_enabled(false);
        set_sink(None);
        let events = ring.drain();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "unit");
        assert_eq!(events[0].get_f64("x"), Some(1.5));
        assert_eq!(events[0].get_u64("n"), Some(7));
    }

    #[test]
    fn events_without_sink_are_dropped() {
        let _g = global_guard();
        set_sink(None);
        set_enabled(true);
        assert!(!tracing());
        event("nobody-listens").f64("x", 1.0).emit();
        set_enabled(false);
    }
}
