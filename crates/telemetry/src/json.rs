//! Minimal hand-rolled JSON emission (no serde).
//!
//! Only what the JSONL sink needs: string escaping per RFC 8259 and
//! number formatting where non-finite floats degrade to `null` (JSON
//! has no NaN/Infinity).

/// Appends `s` as a quoted, escaped JSON string.
pub fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` as a JSON number, or `null` when non-finite.
pub fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{:?}` round-trips f64 exactly and always includes a decimal
        // point or exponent, keeping the token unambiguously a float.
        out.push_str(&format!("{v:?}"));
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn escaped(s: &str) -> String {
        let mut out = String::new();
        push_json_string(&mut out, s);
        out
    }

    #[test]
    fn escapes_quotes_backslashes_and_control_chars() {
        assert_eq!(escaped(r#"a"b"#), r#""a\"b""#);
        assert_eq!(escaped(r"a\b"), r#""a\\b""#);
        assert_eq!(escaped("line1\nline2"), r#""line1\nline2""#);
        assert_eq!(escaped("tab\there"), r#""tab\there""#);
        assert_eq!(escaped("\r\u{08}\u{0c}"), r#""\r\b\f""#);
        assert_eq!(escaped("\u{01}"), r#""\u0001""#);
    }

    #[test]
    fn passes_unicode_through_unescaped() {
        assert_eq!(escaped("σ→∞"), "\"σ→∞\"");
    }

    #[test]
    fn numbers_round_trip_and_nonfinite_become_null() {
        let mut out = String::new();
        push_json_f64(&mut out, 0.1);
        assert_eq!(out, "0.1");
        let parsed: f64 = out.parse().unwrap();
        assert_eq!(parsed, 0.1);

        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut out = String::new();
            push_json_f64(&mut out, bad);
            assert_eq!(out, "null");
        }
    }

    #[test]
    fn integral_floats_stay_float_tokens() {
        let mut out = String::new();
        push_json_f64(&mut out, 3.0);
        assert_eq!(out, "3.0");
    }
}
