//! Structured events and their builder.

use crate::json::{push_json_f64, push_json_string};

/// A single typed event field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Floating-point field.
    F64(f64),
    /// Unsigned integer field.
    U64(u64),
    /// String field.
    Str(String),
}

/// One structured event: a name, a timestamp (seconds since the
/// telemetry epoch), and ordered key/value fields.
#[derive(Debug, Clone)]
pub struct Event {
    /// Event name, e.g. `"query"` or `"bandwidth.step"`.
    pub name: &'static str,
    /// Seconds since the telemetry epoch.
    pub at_seconds: f64,
    /// Fields in insertion order.
    pub fields: Vec<(&'static str, Value)>,
}

/// Renders a float slice as one space-separated string (`"0.5 1.25"`)
/// using round-trip (`{:?}`) formatting, so each element parses back
/// bit-exactly. The encoding shared by [`EventBuilder::f64_slice`] and
/// direct [`Event`] construction.
pub(crate) fn join_f64s(values: &[f64]) -> String {
    let mut joined = String::with_capacity(values.len() * 12);
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            joined.push(' ');
        }
        joined.push_str(&format!("{v:?}"));
    }
    joined
}

impl Event {
    /// Starts an empty event stamped with the current telemetry time.
    ///
    /// Unlike [`crate::event`], this constructor is not gated on
    /// [`crate::tracing`] — use it for records that must exist even when
    /// the global sink is absent (e.g. workload capture files), and the
    /// chainable field methods below to populate it.
    pub fn new(name: &'static str) -> Self {
        Self {
            name,
            at_seconds: crate::now_seconds(),
            fields: Vec::new(),
        }
    }

    /// Adds a float field.
    pub fn f64(mut self, key: &'static str, value: f64) -> Self {
        self.fields.push((key, Value::F64(value)));
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, key: &'static str, value: u64) -> Self {
        self.fields.push((key, Value::U64(value)));
        self
    }

    /// Adds a string field.
    pub fn str(mut self, key: &'static str, value: impl AsRef<str>) -> Self {
        self.fields
            .push((key, Value::Str(value.as_ref().to_string())));
        self
    }

    /// Adds a float-slice field in the space-separated round-trip
    /// encoding (see [`EventBuilder::f64_slice`]).
    pub fn f64_slice(mut self, key: &'static str, values: &[f64]) -> Self {
        self.fields.push((key, Value::Str(join_f64s(values))));
        self
    }

    /// Adds the `trace`/`span`/`parent` identity fields of `ctx`.
    pub fn ctx(self, ctx: &crate::SpanContext) -> Self {
        self.u64("trace", ctx.trace)
            .u64("span", ctx.span)
            .u64("parent", ctx.parent)
    }

    /// Looks up a float field (also widening `u64` fields).
    pub fn get_f64(&self, key: &str) -> Option<f64> {
        self.fields
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| match v {
                Value::F64(x) => *x,
                Value::U64(x) => *x as f64,
                Value::Str(_) => f64::NAN,
            })
    }

    /// Looks up an unsigned integer field.
    pub fn get_u64(&self, key: &str) -> Option<u64> {
        self.fields.iter().find_map(|(k, v)| match v {
            Value::U64(x) if *k == key => Some(*x),
            _ => None,
        })
    }

    /// Looks up a string field.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.fields.iter().find_map(|(k, v)| match v {
            Value::Str(s) if *k == key => Some(s.as_str()),
            _ => None,
        })
    }

    /// Renders the event as one JSON object (no trailing newline), e.g.
    /// `{"event":"query","t":1.25,"estimate":0.5}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.fields.len() * 24);
        out.push_str("{\"event\":");
        push_json_string(&mut out, self.name);
        out.push_str(",\"t\":");
        push_json_f64(&mut out, self.at_seconds);
        for (key, value) in &self.fields {
            out.push(',');
            push_json_string(&mut out, key);
            out.push(':');
            match value {
                Value::F64(v) => push_json_f64(&mut out, *v),
                Value::U64(v) => out.push_str(&v.to_string()),
                Value::Str(s) => push_json_string(&mut out, s),
            }
        }
        out.push('}');
        out
    }
}

/// Builder returned by [`crate::event`]. While tracing is off the
/// builder is inert — field calls are no-ops and nothing allocates.
#[derive(Debug)]
pub struct EventBuilder {
    event: Option<Event>,
}

impl EventBuilder {
    pub(crate) fn new(name: &'static str, live: bool) -> Self {
        Self {
            event: live.then(|| Event {
                name,
                at_seconds: crate::now_seconds(),
                fields: Vec::new(),
            }),
        }
    }

    /// Whether fields will actually be recorded — gate any expensive
    /// field computation on this.
    pub fn live(&self) -> bool {
        self.event.is_some()
    }

    /// Adds a float field.
    pub fn f64(mut self, key: &'static str, value: f64) -> Self {
        if let Some(e) = self.event.as_mut() {
            e.fields.push((key, Value::F64(value)));
        }
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, key: &'static str, value: u64) -> Self {
        if let Some(e) = self.event.as_mut() {
            e.fields.push((key, Value::U64(value)));
        }
        self
    }

    /// Adds a string field. Prefer `&'static str` labels; owned strings
    /// only materialize when the builder is live.
    pub fn str(mut self, key: &'static str, value: impl AsRef<str>) -> Self {
        if let Some(e) = self.event.as_mut() {
            e.fields.push((key, Value::Str(value.as_ref().to_string())));
        }
        self
    }

    /// Adds a float-slice field rendered as one space-separated string
    /// (`"0.5 1.25"`) — used for bandwidth-vector snapshots, where the
    /// dimensionality varies per model and keys must stay `'static`.
    pub fn f64_slice(mut self, key: &'static str, values: &[f64]) -> Self {
        if let Some(e) = self.event.as_mut() {
            e.fields.push((key, Value::Str(join_f64s(values))));
        }
        self
    }

    /// Adds the `trace`/`span`/`parent` identity fields of `ctx`.
    pub fn ctx(self, ctx: &crate::SpanContext) -> Self {
        self.u64("trace", ctx.trace)
            .u64("span", ctx.span)
            .u64("parent", ctx.parent)
    }

    /// Sends the event to the installed sink (no-op when inert).
    pub fn emit(self) {
        if let Some(event) = self.event {
            crate::dispatch(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_builder_allocates_nothing_and_emits_nothing() {
        let b = EventBuilder::new("x", false).f64("a", 1.0).str("s", "y");
        assert!(!b.live());
        b.emit(); // must not reach dispatch/panic
    }

    #[test]
    fn json_rendering_includes_all_fields_in_order() {
        let e = Event {
            name: "query",
            at_seconds: 0.5,
            fields: vec![
                ("estimate", Value::F64(0.25)),
                ("rows", Value::U64(100)),
                ("kernel", Value::Str("gauss\"ian".into())),
            ],
        };
        assert_eq!(
            e.to_json(),
            r#"{"event":"query","t":0.5,"estimate":0.25,"rows":100,"kernel":"gauss\"ian"}"#
        );
    }

    #[test]
    fn field_lookup_by_type() {
        let e = Event {
            name: "x",
            at_seconds: 0.0,
            fields: vec![
                ("a", Value::F64(1.5)),
                ("n", Value::U64(7)),
                ("s", Value::Str("hi".into())),
            ],
        };
        assert_eq!(e.get_f64("a"), Some(1.5));
        assert_eq!(e.get_f64("n"), Some(7.0), "u64 widens to f64");
        assert_eq!(e.get_u64("n"), Some(7));
        assert_eq!(e.get_u64("a"), None);
        assert_eq!(e.get_str("s"), Some("hi"));
        assert_eq!(e.get_f64("missing"), None);
    }

    #[test]
    fn slice_field_round_trips_as_string() {
        let e = {
            let mut b = EventBuilder::new("bw", true);
            b = b.f64_slice("h", &[0.5, 1.25]);
            b.event.unwrap()
        };
        assert_eq!(e.get_str("h"), Some("0.5 1.25"));
    }
}
