//! Scalar math substrate for the `kdesel` workspace.
//!
//! Everything the KDE estimator needs from "numerics land", implemented from
//! scratch so the workspace has no foreign-function or heavyweight numeric
//! dependencies:
//!
//! * [`erf`]/[`erfc`] — double-precision error function (Cody's rational
//!   Chebyshev approximations), the workhorse of the closed-form range
//!   estimate (paper eq. 13),
//! * [`normal`] — Gaussian pdf/cdf/quantile,
//! * [`stats`] — streaming (Welford) moments and covariance, used for
//!   Scott's rule (paper eq. 3) and the dataset generators,
//! * [`vecops`] — small dense-vector kernels shared by the solver,
//! * [`simd`] — a portable fixed-width f64 lane type for the vectorized
//!   columnar kernel sweeps (unsafe-free, auto-vectorized).

pub mod erf;
pub mod normal;
pub mod simd;
pub mod stats;
pub mod vecops;

pub use erf::{erf, erfc};
pub use normal::{normal_cdf, normal_pdf, normal_quantile};
pub use stats::{Covariance, OnlineMoments};

/// `√2`, used throughout the erf-based range integrals.
pub const SQRT_2: f64 = std::f64::consts::SQRT_2;

/// `√π`, appearing in the bandwidth gradient (paper eq. 17).
pub const SQRT_PI: f64 = 1.772_453_850_905_516;

/// `1/√(2π)`, the Gaussian normalization constant.
pub const FRAC_1_SQRT_2PI: f64 = 0.398_942_280_401_432_7;
