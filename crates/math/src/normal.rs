//! Standard normal distribution helpers.
//!
//! The Gaussian kernel (paper eq. 9) makes the univariate normal the basic
//! building block of every estimate: each sample point contributes a product
//! of normal-CDF differences (eq. 12-13). The quantile function is used by
//! the dataset generators and by confidence intervals in the experiment
//! harness.

use crate::erf::{erf, erfc};
use crate::{FRAC_1_SQRT_2PI, SQRT_2};

/// Density of the standard normal distribution `φ(x)`.
#[inline]
pub fn normal_pdf(x: f64) -> f64 {
    FRAC_1_SQRT_2PI * (-0.5 * x * x).exp()
}

/// Cumulative distribution `Φ(x)` of the standard normal.
///
/// Uses `erfc` so the left tail keeps full relative precision.
#[inline]
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / SQRT_2)
}

/// Probability mass a standard normal assigns to `(lo, hi)`.
///
/// This is the per-dimension factor of the KDE range contribution
/// (paper eq. 13) for a point at the origin with unit bandwidth.
#[inline]
pub fn normal_interval(lo: f64, hi: f64) -> f64 {
    debug_assert!(lo <= hi || lo.is_nan() || hi.is_nan());
    0.5 * (erf(hi / SQRT_2) - erf(lo / SQRT_2))
}

/// Inverse CDF (quantile) of the standard normal.
///
/// Peter Acklam's rational approximation, refined by one Halley step against
/// the exact CDF; absolute error below `1e-15` for `p ∈ (1e-300, 1−1e-16)`.
///
/// # Panics
/// Panics for `p` outside `[0, 1]`. Returns `±∞` at the endpoints.
pub fn normal_quantile(p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "probability {p} out of [0,1]");
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }

    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239e0,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838e0,
        -2.549_732_539_343_734e0,
        4.374_664_141_464_968e0,
        2.938_163_982_698_783e0,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996e0,
        3.754_408_661_907_416e0,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step using the exact CDF.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (0.5 * x * x).exp();
    x - u / (1.0 + 0.5 * x * u)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pdf_reference() {
        assert!((normal_pdf(0.0) - 0.3989422804014327).abs() < 1e-16);
        assert!((normal_pdf(1.0) - 0.24197072451914337).abs() < 1e-16);
        assert!((normal_pdf(-1.0) - normal_pdf(1.0)).abs() < 1e-18);
    }

    #[test]
    fn cdf_reference() {
        let cases = [
            (0.0, 0.5),
            (1.0, 0.8413447460685429),
            (-1.0, 0.15865525393145705),
            (1.959963984540054, 0.975),
            (-6.0, 9.865876450376946e-10),
        ];
        for (x, want) in cases {
            let got = normal_cdf(x);
            assert!(
                ((got - want) / want).abs() < 1e-12,
                "cdf({x}) = {got}, want {want}"
            );
        }
    }

    #[test]
    fn interval_mass_reference() {
        // P(-1 < Z < 1) ≈ 0.6826894921370859.
        assert!((normal_interval(-1.0, 1.0) - 0.6826894921370859).abs() < 1e-14);
        // Full line integrates to 1.
        assert!((normal_interval(f64::NEG_INFINITY, f64::INFINITY) - 1.0).abs() < 1e-15);
        // Degenerate interval has zero mass.
        assert_eq!(normal_interval(0.7, 0.7), 0.0);
    }

    #[test]
    fn interval_equals_cdf_difference() {
        for (lo, hi) in [(-2.0, -0.5), (-0.5, 0.25), (1.0, 3.0)] {
            let a = normal_interval(lo, hi);
            let b = normal_cdf(hi) - normal_cdf(lo);
            assert!((a - b).abs() < 1e-15, "({lo},{hi}): {a} vs {b}");
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        for p in [1e-12, 1e-6, 0.01, 0.25, 0.5, 0.75, 0.99, 1.0 - 1e-9] {
            let x = normal_quantile(p);
            let back = normal_cdf(x);
            assert!(
                ((back - p) / p).abs() < 1e-10,
                "roundtrip p={p}: x={x}, cdf={back}"
            );
        }
    }

    #[test]
    fn quantile_reference() {
        assert_eq!(normal_quantile(0.5), 0.0);
        assert!((normal_quantile(0.975) - 1.959963984540054).abs() < 1e-12);
        assert!((normal_quantile(0.8413447460685429) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_endpoints() {
        assert_eq!(normal_quantile(0.0), f64::NEG_INFINITY);
        assert_eq!(normal_quantile(1.0), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn quantile_rejects_invalid() {
        normal_quantile(1.5);
    }

    mod prop {
        use super::super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn cdf_in_unit_interval(x in -40.0f64..40.0) {
                let v = normal_cdf(x);
                prop_assert!((0.0..=1.0).contains(&v));
            }

            #[test]
            fn cdf_monotone(x in -10.0f64..10.0, dx in 1e-9f64..2.0) {
                prop_assert!(normal_cdf(x + dx) >= normal_cdf(x));
            }

            #[test]
            fn interval_nonnegative(a in -10.0f64..10.0, w in 0.0f64..5.0) {
                prop_assert!(normal_interval(a, a + w) >= 0.0);
            }

            #[test]
            fn quantile_roundtrip(p in 1e-9f64..0.999_999_999) {
                let x = normal_quantile(p);
                prop_assert!((normal_cdf(x) - p).abs() < 1e-9);
            }

            #[test]
            fn symmetric_quantiles(p in 1e-9f64..0.5) {
                let lo = normal_quantile(p);
                let hi = normal_quantile(1.0 - p);
                prop_assert!((lo + hi).abs() < 1e-8);
            }
        }
    }
}
