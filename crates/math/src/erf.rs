//! Double-precision error function.
//!
//! Implements W. J. Cody's rational Chebyshev approximations ("Rational
//! Chebyshev approximation for the error function", Math. Comp. 23, 1969;
//! the SPECFUN `CALERF` routine). Relative error is below `1.2e-16` over the
//! full double range, which matters here because the KDE range estimate
//! (paper eq. 13) is a *difference* of erf values: for narrow query
//! intervals the difference cancels most leading digits, so the inputs must
//! be accurate to the last ulp.

/// Split point between the primary interval and the erfc expansions.
const THRESH: f64 = 0.46875;

// Coefficients for erf(x), |x| <= 0.46875.
const A: [f64; 5] = [
    3.161_123_743_870_565_6e0,
    1.138_641_541_510_501_6e2,
    3.774_852_376_853_02e2,
    3.209_377_589_138_469_4e3,
    1.857_777_061_846_031_5e-1,
];
const B: [f64; 4] = [
    2.360_129_095_234_412_2e1,
    2.440_246_379_344_441_7e2,
    1.282_616_526_077_372_3e3,
    2.844_236_833_439_171e3,
];

// Coefficients for erfc(x), 0.46875 <= x <= 4.0.
const C: [f64; 9] = [
    5.641_884_969_886_701e-1,
    8.883_149_794_388_377,
    6.611_919_063_714_163e1,
    2.986_351_381_974_001e2,
    8.819_522_212_417_69e2,
    1.712_047_612_634_070_7e3,
    2.051_078_377_826_071_6e3,
    1.230_339_354_797_997_2e3,
    2.153_115_354_744_038_3e-8,
];
const D: [f64; 8] = [
    1.574_492_611_070_983_5e1,
    1.176_939_508_913_125e2,
    5.371_811_018_620_099e2,
    1.621_389_574_566_690_3e3,
    3.290_799_235_733_459_7e3,
    4.362_619_090_143_247e3,
    3.439_367_674_143_721_6e3,
    1.230_339_354_803_749_5e3,
];

// Coefficients for erfc(x), x > 4.0.
const P: [f64; 6] = [
    3.053_266_349_612_323_6e-1,
    3.603_448_999_498_044_5e-1,
    1.257_817_261_112_292_6e-1,
    1.608_378_514_874_227_5e-2,
    6.587_491_615_298_378e-4,
    1.631_538_713_730_209_7e-2,
];
const Q: [f64; 5] = [
    2.568_520_192_289_822,
    1.872_952_849_923_460_4,
    5.279_051_029_514_285e-1,
    6.051_834_131_244_132e-2,
    2.335_204_976_268_691_8e-3,
];

const SQRPI: f64 = 5.641_895_835_477_563e-1; // 1/√π

/// erf for |x| <= THRESH via the rational approximation R(x²)·x.
fn erf_small(x: f64) -> f64 {
    let y = x.abs();
    let z = y * y;
    let mut num = A[4] * z;
    let mut den = z;
    for i in 0..3 {
        num = (num + A[i]) * z;
        den = (den + B[i]) * z;
    }
    x * (num + A[3]) / (den + B[3])
}

/// erfc for THRESH <= x <= 4.0.
fn erfc_mid(x: f64) -> f64 {
    let mut num = C[8] * x;
    let mut den = x;
    for i in 0..7 {
        num = (num + C[i]) * x;
        den = (den + D[i]) * x;
    }
    let r = (num + C[7]) / (den + D[7]);
    exp_neg_xsq(x) * r
}

/// erfc for x > 4.0.
fn erfc_large(x: f64) -> f64 {
    // For very large x, erfc underflows to zero; the crossover point where
    // exp(-x²) underflows is ~26.64 for f64.
    if x > 26.643 {
        return 0.0;
    }
    let z = 1.0 / (x * x);
    let mut num = P[5] * z;
    let mut den = z;
    for i in 0..4 {
        num = (num + P[i]) * z;
        den = (den + Q[i]) * z;
    }
    let r = z * (num + P[4]) / (den + Q[4]);
    exp_neg_xsq(x) * (SQRPI - r) / x
}

/// Computes `exp(-x²)` with the argument split into a high part rounded to
/// 1/16 and a low remainder, avoiding the catastrophic relative error that a
/// naive `(-x*x).exp()` accrues for large `x` (the rounding error of `x*x`
/// is amplified by the exponential).
fn exp_neg_xsq(x: f64) -> f64 {
    let ysq = (x * 16.0).trunc() / 16.0;
    let del = (x - ysq) * (x + ysq);
    (-ysq * ysq).exp() * (-del).exp()
}

/// The error function `erf(x) = 2/√π ∫₀ˣ e^{−t²} dt`.
///
/// Odd, monotone, `erf(±∞) = ±1`. NaN propagates.
pub fn erf(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    let y = x.abs();
    if y <= THRESH {
        erf_small(x)
    } else if y <= 4.0 {
        let e = 1.0 - erfc_mid(y);
        if x < 0.0 {
            -e
        } else {
            e
        }
    } else {
        let e = 1.0 - erfc_large(y);
        if x < 0.0 {
            -e
        } else {
            e
        }
    }
}

/// The complementary error function `erfc(x) = 1 − erf(x)`.
///
/// Accurate in the right tail where `1 − erf(x)` would cancel.
pub fn erfc(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    let y = x.abs();
    let tail = if y <= THRESH {
        return 1.0 - erf_small(x);
    } else if y <= 4.0 {
        erfc_mid(y)
    } else {
        erfc_large(y)
    };
    if x < 0.0 {
        2.0 - tail
    } else {
        tail
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference values computed with mpmath at 50 digits.
    const REFERENCE: &[(f64, f64)] = &[
        (0.0, 0.0),
        (1e-10, 1.1283791670955126e-10),
        (0.1, 0.1124629160182849),
        (0.25, 0.2763263901682369),
        (0.46875, 0.49261347321793797),
        (0.5, 0.5204998778130465),
        (1.0, 0.8427007929497149),
        (1.5, 0.9661051464753107),
        (2.0, 0.9953222650189527),
        (3.0, 0.9999779095030014),
        (4.0, 0.9999999845827421),
        (5.0, 0.9999999999984626),
    ];

    #[test]
    fn matches_reference_values() {
        for &(x, want) in REFERENCE {
            let got = erf(x);
            let tol = 1e-15 * want.abs().max(1e-300);
            assert!(
                (got - want).abs() <= tol.max(2e-16),
                "erf({x}) = {got}, want {want}"
            );
        }
    }

    #[test]
    fn erf_is_odd() {
        for &(x, _) in REFERENCE {
            assert_eq!(erf(-x), -erf(x), "x = {x}");
        }
    }

    #[test]
    fn erfc_complements_erf() {
        for x in [-3.0, -1.0, -0.3, 0.0, 0.3, 1.0, 3.0] {
            let s = erf(x) + erfc(x);
            assert!((s - 1.0).abs() < 1e-14, "erf+erfc at {x} = {s}");
        }
    }

    #[test]
    fn erfc_tail_reference() {
        // erfc values where 1-erf would lose all precision.
        let cases = [
            (5.0, 1.5374597944280347e-12),
            (6.0, 2.1519736712498913e-17),
            (8.0, 1.1224297172982928e-29),
            (10.0, 2.0884875837625447e-45),
        ];
        for (x, want) in cases {
            let got = erfc(x);
            assert!(
                ((got - want) / want).abs() < 1e-12,
                "erfc({x}) = {got:e}, want {want:e}"
            );
        }
    }

    #[test]
    fn saturates_at_infinity() {
        assert_eq!(erf(f64::INFINITY), 1.0);
        assert_eq!(erf(-f64::INFINITY), -1.0);
        assert_eq!(erf(30.0), 1.0);
        assert_eq!(erfc(30.0), 0.0);
        assert_eq!(erfc(-30.0), 2.0);
    }

    #[test]
    fn nan_propagates() {
        assert!(erf(f64::NAN).is_nan());
        assert!(erfc(f64::NAN).is_nan());
    }

    #[test]
    fn monotone_increasing() {
        let mut prev = -1.0;
        let mut x = -6.0;
        while x <= 6.0 {
            let v = erf(x);
            assert!(v >= prev, "erf not monotone at {x}");
            prev = v;
            x += 0.01;
        }
    }

    #[test]
    fn continuous_at_branch_points() {
        for b in [THRESH, 4.0] {
            let below = erf(b - 1e-12);
            let above = erf(b + 1e-12);
            assert!((below - above).abs() < 1e-11, "jump at {b}");
        }
    }

    #[test]
    fn derivative_matches_gaussian() {
        // d/dx erf(x) = 2/√π e^{-x²}; central finite difference check.
        for x in [0.0, 0.3, 1.0, 2.5] {
            let h = 1e-6;
            let fd = (erf(x + h) - erf(x - h)) / (2.0 * h);
            let exact = 2.0 / crate::SQRT_PI * (-x * x).exp();
            assert!((fd - exact).abs() < 1e-9, "at {x}: {fd} vs {exact}");
        }
    }

    mod prop {
        use super::super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn bounded(x in -1e6f64..1e6) {
                let v = erf(x);
                prop_assert!((-1.0..=1.0).contains(&v));
            }

            #[test]
            fn odd_symmetry(x in -50.0f64..50.0) {
                prop_assert_eq!(erf(-x), -erf(x));
            }

            #[test]
            fn erfc_nonnegative(x in -50.0f64..50.0) {
                let v = erfc(x);
                prop_assert!((0.0..=2.0).contains(&v));
            }

            #[test]
            fn complement_identity(x in -5.0f64..5.0) {
                prop_assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-13);
            }

            #[test]
            fn monotone_pairs(x in -6.0f64..6.0, dx in 1e-9f64..1.0) {
                prop_assert!(erf(x + dx) >= erf(x));
            }
        }
    }
}
