//! Portable fixed-width f64 lane type for the vectorized kernel sweeps.
//!
//! `std::simd` is still nightly-only and the workspace builds offline, so
//! this module provides the minimal lane abstraction the columnar KDE
//! sweeps need: a `[f64; LANES]` wrapper whose elementwise operators are
//! plain loops over the array. The loops are trivially auto-vectorizable
//! (no branches, no reductions, unit stride) and the workspace builds
//! with `-C target-cpu=native` (see `.cargo/config.toml`), so rustc/LLVM
//! lowers them to packed `vaddpd`/`vmulpd`/`vdivpd`/`vmaxpd` instructions
//! at the host's widest vector width. No `unsafe`, no intrinsics.
//!
//! **Bit-identity contract.** Every lane applies exactly the IEEE-754
//! operation the scalar code would: `F64s` never reassociates, never
//! fuses multiply-add, and transcendental steps ([`F64s::map`], e.g. the
//! scalar `erf`) run the very same scalar function per lane. A sweep
//! written with `F64s` therefore produces results bitwise equal to the
//! scalar row-at-a-time loop it replaces — which is what lets the SoA
//! fast path slot under the device layer's bit-identity pins.

// Lint allowlist for this (unsafe-free) module: the operator macro
// spells lane updates as `*a = *a op *b` rather than `*a op= *b` so the
// generated loop bodies stay textually identical to the scalar IEEE-754
// expressions the bit-identity contract quotes; the two forms compile
// identically, the explicit one documents the contract.
#![allow(clippy::assign_op_pattern)]

use std::ops::{Add, Div, Mul, Neg, Sub};

/// Number of f64 lanes processed per vector step. Eight doubles = one
/// AVX-512 register or two AVX2 registers; LLVM splits or widens as the
/// target allows, and correctness never depends on the physical width.
pub const LANES: usize = 8;

/// A pack of [`LANES`] `f64` values with elementwise arithmetic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct F64s(pub [f64; LANES]);

impl F64s {
    /// All lanes set to `v`.
    #[inline]
    pub fn splat(v: f64) -> Self {
        Self([v; LANES])
    }

    /// Loads the first [`LANES`] elements of `s`.
    ///
    /// # Panics
    /// Panics when `s` has fewer than [`LANES`] elements.
    #[inline]
    pub fn from_slice(s: &[f64]) -> Self {
        let mut out = [0.0; LANES];
        out.copy_from_slice(&s[..LANES]);
        Self(out)
    }

    /// Stores the lanes into the first [`LANES`] elements of `out`.
    ///
    /// # Panics
    /// Panics when `out` has fewer than [`LANES`] elements.
    #[inline]
    pub fn write_to(self, out: &mut [f64]) {
        out[..LANES].copy_from_slice(&self.0);
    }

    /// The lanes as a plain array.
    #[inline]
    pub fn to_array(self) -> [f64; LANES] {
        self.0
    }

    /// Applies a scalar function to every lane — the escape hatch for
    /// transcendentals (`erf`, `exp`) that stay scalar per lane.
    #[inline]
    pub fn map(self, f: impl Fn(f64) -> f64) -> Self {
        let mut out = self.0;
        for v in &mut out {
            *v = f(*v);
        }
        Self(out)
    }

    /// Elementwise `f64::clamp` — lowers to packed min/max.
    #[inline]
    pub fn clamp(self, lo: f64, hi: f64) -> Self {
        let mut out = self.0;
        for v in &mut out {
            *v = v.clamp(lo, hi);
        }
        Self(out)
    }

    /// Zeroes every lane whose `probe` lane is NOT within `[lo, hi]`
    /// (NaN probes zero too) and keeps the rest — the branch-free select
    /// (packed compare + blend) that lets guarded kernel terms compute
    /// unconditionally on all lanes and discard the out-of-support ones,
    /// exactly like the scalar `if in-range { value } else { 0.0 }`.
    #[inline]
    pub fn zero_unless_within(self, probe: F64s, lo: f64, hi: f64) -> Self {
        let mut out = self.0;
        for (v, p) in out.iter_mut().zip(&probe.0) {
            if !(lo <= *p && *p <= hi) {
                *v = 0.0;
            }
        }
        Self(out)
    }
}

macro_rules! elementwise {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait for F64s {
            type Output = F64s;
            #[inline]
            fn $method(self, rhs: F64s) -> F64s {
                let mut out = self.0;
                for (a, b) in out.iter_mut().zip(&rhs.0) {
                    *a = *a $op *b;
                }
                F64s(out)
            }
        }

        impl $trait<f64> for F64s {
            type Output = F64s;
            #[inline]
            fn $method(self, rhs: f64) -> F64s {
                self $op F64s::splat(rhs)
            }
        }
    };
}

elementwise!(Add, add, +);
elementwise!(Sub, sub, -);
elementwise!(Mul, mul, *);
elementwise!(Div, div, /);

impl Neg for F64s {
    type Output = F64s;
    #[inline]
    fn neg(self) -> F64s {
        let mut out = self.0;
        for v in &mut out {
            *v = -*v;
        }
        F64s(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splat_and_roundtrip() {
        let v = F64s::splat(2.5);
        assert_eq!(v.to_array(), [2.5; LANES]);
        let data: Vec<f64> = (0..LANES + 2).map(|i| i as f64).collect();
        let loaded = F64s::from_slice(&data);
        let mut out = vec![0.0; LANES];
        loaded.write_to(&mut out);
        assert_eq!(out, &data[..LANES]);
    }

    #[test]
    fn arithmetic_is_elementwise_and_bit_exact() {
        let a: [f64; LANES] = std::array::from_fn(|i| (i as f64 + 1.0) * 0.37);
        let b: [f64; LANES] = std::array::from_fn(|i| (i as f64 + 3.0) * -1.91);
        let (va, vb) = (F64s(a), F64s(b));
        for i in 0..LANES {
            assert_eq!((va + vb).0[i], a[i] + b[i]);
            assert_eq!((va - vb).0[i], a[i] - b[i]);
            assert_eq!((va * vb).0[i], a[i] * b[i]);
            assert_eq!((va / vb).0[i], a[i] / b[i]);
            assert_eq!((-va).0[i], -a[i]);
            assert_eq!((va * 0.5).0[i], a[i] * 0.5);
        }
    }

    #[test]
    fn map_and_clamp_match_scalar() {
        let a: [f64; LANES] = std::array::from_fn(|i| i as f64 - 3.5);
        let v = F64s(a);
        for (i, &x) in a.iter().enumerate() {
            assert_eq!(v.map(f64::exp).0[i], x.exp());
            assert_eq!(v.clamp(-1.0, 1.0).0[i], x.clamp(-1.0, 1.0));
        }
    }
}
