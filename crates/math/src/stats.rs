//! Streaming summary statistics.
//!
//! Scott's rule (paper eq. 3) needs per-dimension standard deviations of the
//! sample; the paper computes them on the GPU via a sum/sum-of-squares
//! reduction. On the host side we use Welford's numerically stable update so
//! dataset generators and tests can rely on exact moments even for badly
//! scaled data.

/// Welford online mean/variance accumulator for one dimension.
#[derive(Debug, Clone, Default)]
pub struct OnlineMoments {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineMoments {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Consumes one observation.
    pub fn add(&mut self, x: f64) {
        debug_assert!(!x.is_nan());
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance `1/n Σ (x−μ)²` (0 when empty).
    ///
    /// The paper's Scott's-rule implementation uses the population form
    /// (`σ² = 1/n Σx² − (1/n Σx)²`, §5.2), so that is the default here.
    pub fn variance_population(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance_sample(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev_population(&self) -> f64 {
        self.variance_population().sqrt()
    }

    /// Smallest observation (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`−∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator (Chan's parallel combination).
    pub fn merge(&mut self, other: &OnlineMoments) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Per-dimension moments plus pairwise covariances of a `d`-dimensional
/// stream. Used by dataset generators (to verify correlation structure) and
/// by the SCV bandwidth selector's pilot estimates.
#[derive(Debug, Clone)]
pub struct Covariance {
    dims: usize,
    count: u64,
    means: Vec<f64>,
    /// Upper-triangular (including diagonal) co-moment matrix, row-major.
    comoments: Vec<f64>,
}

impl Covariance {
    /// Creates an accumulator for `dims`-dimensional observations.
    pub fn new(dims: usize) -> Self {
        assert!(dims > 0);
        Self {
            dims,
            count: 0,
            means: vec![0.0; dims],
            comoments: vec![0.0; dims * (dims + 1) / 2],
        }
    }

    #[inline]
    fn tri_index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i <= j && j < self.dims);
        i * self.dims - i * (i + 1) / 2 + j
    }

    /// Consumes one observation.
    ///
    /// # Panics
    /// Panics if `point.len() != dims`.
    pub fn add(&mut self, point: &[f64]) {
        assert_eq!(point.len(), self.dims);
        self.count += 1;
        let n = self.count as f64;
        // Save deltas against the old means before updating them.
        let deltas: Vec<f64> = point
            .iter()
            .zip(&self.means)
            .map(|(&x, &m)| x - m)
            .collect();
        for (m, d) in self.means.iter_mut().zip(&deltas) {
            *m += d / n;
        }
        #[allow(clippy::needless_range_loop)] // parallel indexing of 3 arrays
        for i in 0..self.dims {
            for j in i..self.dims {
                let idx = self.tri_index(i, j);
                // Co-moment update: Δᵢ·(xⱼ − μⱼ_new).
                self.comoments[idx] += deltas[i] * (point[j] - self.means[j]);
            }
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean vector.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Population covariance between dimensions `i` and `j`.
    pub fn covariance_population(&self, i: usize, j: usize) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let (i, j) = if i <= j { (i, j) } else { (j, i) };
        self.comoments[self.tri_index(i, j)] / self.count as f64
    }

    /// Population variance of dimension `i`.
    pub fn variance_population(&self, i: usize) -> f64 {
        self.covariance_population(i, i)
    }

    /// Population standard deviation of dimension `i`.
    pub fn std_dev_population(&self, i: usize) -> f64 {
        self.variance_population(i).sqrt()
    }

    /// Pearson correlation between dimensions `i` and `j` (0 when either
    /// dimension is constant).
    pub fn correlation(&self, i: usize, j: usize) -> f64 {
        let denom = self.std_dev_population(i) * self.std_dev_population(j);
        if denom == 0.0 {
            0.0
        } else {
            self.covariance_population(i, j) / denom
        }
    }
}

/// Per-dimension standard deviations of a row-major point set — the `σ_i`
/// inputs to Scott's rule (paper eq. 3).
///
/// # Panics
/// Panics if `data.len()` is not a multiple of `dims`.
pub fn column_std_devs(data: &[f64], dims: usize) -> Vec<f64> {
    assert!(dims > 0);
    assert_eq!(data.len() % dims, 0, "ragged row-major data");
    let mut moments = vec![OnlineMoments::new(); dims];
    for row in data.chunks_exact(dims) {
        for (m, &x) in moments.iter_mut().zip(row) {
            m.add(x);
        }
    }
    moments.iter().map(|m| m.std_dev_population()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments_of_known_sequence() {
        let mut m = OnlineMoments::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            m.add(x);
        }
        assert_eq!(m.count(), 8);
        assert!((m.mean() - 5.0).abs() < 1e-15);
        assert!((m.variance_population() - 4.0).abs() < 1e-12);
        assert!((m.std_dev_population() - 2.0).abs() < 1e-12);
        assert_eq!(m.min(), 2.0);
        assert_eq!(m.max(), 9.0);
    }

    #[test]
    fn empty_moments_are_zero() {
        let m = OnlineMoments::new();
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.variance_population(), 0.0);
        assert_eq!(m.variance_sample(), 0.0);
    }

    #[test]
    fn welford_is_stable_for_large_offsets() {
        // Classic catastrophic-cancellation case: tiny variance around 1e9.
        let mut m = OnlineMoments::new();
        for x in [1e9 + 4.0, 1e9 + 7.0, 1e9 + 13.0, 1e9 + 16.0] {
            m.add(x);
        }
        assert!((m.variance_sample() - 30.0).abs() < 1e-6);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineMoments::new();
        for &x in &xs {
            whole.add(x);
        }
        let mut a = OnlineMoments::new();
        let mut b = OnlineMoments::new();
        for &x in &xs[..37] {
            a.add(x);
        }
        for &x in &xs[37..] {
            b.add(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.variance_population() - whole.variance_population()).abs() < 1e-12);
    }

    #[test]
    fn covariance_of_correlated_pairs() {
        let mut c = Covariance::new(2);
        // y = 2x exactly: correlation 1, cov = 2·var(x).
        for i in 0..50 {
            let x = i as f64;
            c.add(&[x, 2.0 * x]);
        }
        assert!((c.correlation(0, 1) - 1.0).abs() < 1e-12);
        assert!((c.covariance_population(0, 1) - 2.0 * c.variance_population(0)).abs() < 1e-9);
        // Symmetric access.
        assert_eq!(c.covariance_population(0, 1), c.covariance_population(1, 0));
    }

    #[test]
    fn covariance_of_independent_alternation_is_zero() {
        let mut c = Covariance::new(2);
        for i in 0..1000 {
            let x = (i % 2) as f64;
            let y = ((i / 2) % 2) as f64;
            c.add(&[x, y]);
        }
        assert!(c.correlation(0, 1).abs() < 1e-12);
    }

    #[test]
    fn constant_dimension_has_zero_correlation() {
        let mut c = Covariance::new(2);
        for i in 0..10 {
            c.add(&[i as f64, 3.0]);
        }
        assert_eq!(c.correlation(0, 1), 0.0);
    }

    #[test]
    fn column_std_devs_row_major() {
        // Two columns: first constant, second alternating ±1.
        let data = [5.0, 1.0, 5.0, -1.0, 5.0, 1.0, 5.0, -1.0];
        let sd = column_std_devs(&data, 2);
        assert!(sd[0].abs() < 1e-15);
        assert!((sd[1] - 1.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_data_panics() {
        column_std_devs(&[1.0, 2.0, 3.0], 2);
    }

    mod prop {
        use super::super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn variance_nonnegative(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
                let mut m = OnlineMoments::new();
                for &x in &xs { m.add(x); }
                prop_assert!(m.variance_population() >= -1e-9);
                prop_assert!(m.min() <= m.mean() + 1e-9);
                prop_assert!(m.max() >= m.mean() - 1e-9);
            }

            #[test]
            fn merge_matches_sequential(
                xs in proptest::collection::vec(-1e3f64..1e3, 2..100),
                split in 0usize..100
            ) {
                let split = split % xs.len();
                let mut whole = OnlineMoments::new();
                for &x in &xs { whole.add(x); }
                let mut a = OnlineMoments::new();
                let mut b = OnlineMoments::new();
                for &x in &xs[..split] { a.add(x); }
                for &x in &xs[split..] { b.add(x); }
                a.merge(&b);
                prop_assert!((a.mean() - whole.mean()).abs() < 1e-9);
                prop_assert!((a.variance_population() - whole.variance_population()).abs() < 1e-6);
            }

            #[test]
            fn correlation_bounded(
                pts in proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 2..100)
            ) {
                let mut c = Covariance::new(2);
                for (x, y) in &pts { c.add(&[*x, *y]); }
                let r = c.correlation(0, 1);
                prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
            }
        }
    }
}
