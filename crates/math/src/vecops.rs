//! Small dense-vector kernels used by the optimization stack.
//!
//! The bandwidth vectors the solver manipulates are tiny (`d ≤ ~50`), so
//! these are straightforward scalar loops; what matters is a single shared,
//! well-tested definition rather than raw throughput.

/// Dot product `xᵀy`.
///
/// # Panics
/// Panics on length mismatch (debug builds assert; release relies on zip).
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(&a, &b)| a * b).sum()
}

/// Euclidean norm `‖x‖₂`.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Infinity norm `max |xᵢ|` (0 for the empty vector).
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0, |m, &v| m.max(v.abs()))
}

/// `y ← y + a·x`.
#[inline]
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// `x ← a·x`.
#[inline]
pub fn scale(a: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= a;
    }
}

/// Returns `x − y` as a new vector.
#[inline]
pub fn sub(x: &[f64], y: &[f64]) -> Vec<f64> {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(&a, &b)| a - b).collect()
}

/// Returns `x + y` as a new vector.
#[inline]
pub fn add(x: &[f64], y: &[f64]) -> Vec<f64> {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(&a, &b)| a + b).collect()
}

/// Clamps each component of `x` into `[lo_i, hi_i]` (box projection).
#[inline]
pub fn project_box(x: &mut [f64], lo: &[f64], hi: &[f64]) {
    debug_assert_eq!(x.len(), lo.len());
    debug_assert_eq!(x.len(), hi.len());
    for ((xi, &l), &h) in x.iter_mut().zip(lo).zip(hi) {
        *xi = xi.clamp(l, h);
    }
}

/// Squared Euclidean distance `‖x − y‖²`.
#[inline]
pub fn dist_sq(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    x.iter()
        .zip(y)
        .map(|(&a, &b)| {
            let d = a - b;
            d * d
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(norm_inf(&[-7.0, 2.0, 5.0]), 7.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn scale_add_sub() {
        let mut x = vec![1.0, -2.0];
        scale(-3.0, &mut x);
        assert_eq!(x, vec![-3.0, 6.0]);
        assert_eq!(add(&[1.0, 2.0], &[3.0, 4.0]), vec![4.0, 6.0]);
        assert_eq!(sub(&[1.0, 2.0], &[3.0, 4.0]), vec![-2.0, -2.0]);
    }

    #[test]
    fn box_projection_clamps() {
        let mut x = vec![-5.0, 0.5, 9.0];
        project_box(&mut x, &[0.0, 0.0, 0.0], &[1.0, 1.0, 1.0]);
        assert_eq!(x, vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn distance() {
        assert_eq!(dist_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    mod prop {
        use super::super::*;
        use proptest::prelude::*;

        fn vecpair() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
            (1usize..20).prop_flat_map(|n| {
                (
                    proptest::collection::vec(-1e3f64..1e3, n),
                    proptest::collection::vec(-1e3f64..1e3, n),
                )
            })
        }

        proptest! {
            #[test]
            fn cauchy_schwarz((x, y) in vecpair()) {
                prop_assert!(dot(&x, &y).abs() <= norm2(&x) * norm2(&y) + 1e-6);
            }

            #[test]
            fn projection_is_idempotent(x in proptest::collection::vec(-10.0f64..10.0, 1..10)) {
                let lo = vec![-1.0; x.len()];
                let hi = vec![1.0; x.len()];
                let mut once = x.clone();
                project_box(&mut once, &lo, &hi);
                let mut twice = once.clone();
                project_box(&mut twice, &lo, &hi);
                prop_assert_eq!(once, twice);
            }

            #[test]
            fn sub_then_add_roundtrips((x, y) in vecpair()) {
                let z = add(&sub(&x, &y), &y);
                for (a, b) in z.iter().zip(&x) {
                    prop_assert!((a - b).abs() < 1e-9);
                }
            }
        }
    }
}
