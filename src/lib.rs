//! # kdesel — self-tuning kernel density models for selectivity estimation
//!
//! Umbrella crate re-exporting the full public API of the workspace: a Rust
//! reproduction of *Heimel, Kiefer, Markl: Self-Tuning, GPU-Accelerated
//! Kernel Density Models for Multidimensional Selectivity Estimation*
//! (SIGMOD 2015).
//!
//! See the individual crates for details; `examples/` and the README walk
//! through typical usage.
//!
//! ```
//! use kdesel::device::{Backend, Device};
//! use kdesel::kde::{HeuristicKde, KernelFn};
//! use kdesel::{Rect, SelectivityEstimator};
//!
//! // A 2-D sample (row-major) and a Scott's-rule KDE model over it.
//! let sample = vec![0.1, 0.2, 0.4, 0.4, 0.6, 0.5, 0.9, 0.8];
//! let mut model = HeuristicKde::new(
//!     Device::new(Backend::CpuSeq), &sample, 2, KernelFn::Gaussian);
//!
//! let everything = model.estimate(&Rect::cube(2, -10.0, 10.0));
//! assert!((everything - 1.0).abs() < 1e-6);
//! let nothing = model.estimate(&Rect::cube(2, 100.0, 101.0));
//! assert!(nothing < 1e-9);
//! ```

pub use kdesel_data as data;
pub use kdesel_device as device;
pub use kdesel_engine as engine;
pub use kdesel_estimators as estimators;
pub use kdesel_hist as hist;
pub use kdesel_kde as kde;
pub use kdesel_math as math;
pub use kdesel_sample as sample;
pub use kdesel_serve as serve;
pub use kdesel_solver as solver;
pub use kdesel_storage as storage;
pub use kdesel_telemetry as telemetry;
pub use kdesel_types as types;

pub use kdesel_types::{
    ErrorMetric, LabelledQuery, MemoryBudget, Precision, QueryFeedback, Rect, SelectivityEstimator,
    Summary,
};
