//! Figure 4: estimation quality on static 3D datasets.
//!
//! Prints, for every dataset × workload cell, the boxplot statistics of the
//! mean absolute selectivity error per estimator over the repetitions —
//! the numbers behind the paper's Figure 4 — plus the pairwise win-rate
//! matrix over the 3D experiments.

use kdesel_bench::{run_static_figure, Cli};

fn main() {
    run_static_figure(
        &Cli::parse(),
        3,
        "Figure 4: static estimation quality, 3D datasets",
    );
}
