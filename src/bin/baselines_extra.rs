//! Extended baseline comparison (beyond the paper's Figure 4/5 lineup).
//!
//! Adds the §2 strawmen — the attribute-value-independence estimator
//! (per-dimension equi-depth histograms, multiplied) and the naive
//! sample-counting estimator — to the paper's five, over the synthetic and
//! forest datasets. Expected shape: AVI collapses on correlated data, the
//! sampling estimator loses to every KDE variant (the §2.3 claim), and the
//! paper's ordering among the original five is unchanged.

use kdesel_bench::{emit, emit_winrates, Cli};
use kdesel_data::{Dataset, WorkloadKind};
use kdesel_engine::estimators::EstimatorKind;
use kdesel_engine::experiments::static_quality::{run_static_cell, StaticCell, StaticConfig};
use kdesel_engine::experiments::winrate::WinRateMatrix;
use kdesel_engine::report::{fmt, TextTable};

fn main() {
    let cli = Cli::parse();
    let config = StaticConfig {
        rows: cli.rows_or(6_000, 100_000),
        repetitions: cli.reps_or(2, 25),
        train_queries: if cli.full { 100 } else { 50 },
        test_queries: if cli.full { 300 } else { 100 },
        estimators: EstimatorKind::EXTENDED.to_vec(),
        seed: cli.seed.unwrap_or(0xba5e),
        fast_optimizers: !cli.full,
    };
    eprintln!(
        "# Extended baselines (rows={} reps={})",
        config.rows, config.repetitions
    );
    let mut table = TextTable::new(["dataset", "workload", "estimator", "mean_error", "median"]);
    let mut matrix = WinRateMatrix::new(config.estimators.clone());
    for dataset in [Dataset::Synthetic, Dataset::Forest] {
        for workload in [WorkloadKind::DataTarget, WorkloadKind::DataVolume] {
            let cell = StaticCell {
                dataset,
                dims: 3,
                workload,
            };
            eprintln!("# running {} {} ...", dataset.name(), workload.name());
            let result = run_static_cell(cell, &config);
            for (kind, summary) in &result.summaries {
                table.row([
                    dataset.name().to_string(),
                    workload.name().to_string(),
                    kind.name().to_string(),
                    fmt(summary.mean()),
                    fmt(summary.median()),
                ]);
            }
            matrix.add_cell(&result);
        }
    }
    emit(&cli, &table);
    println!();
    emit_winrates(
        &cli,
        &matrix,
        "win rates incl. AVI & sampling baselines (%)",
    );
}
