//! `kdesel-calibrate`: measure a backend, fit its cost model, emit the
//! versioned measured profile.
//!
//! The paper's cost model is calibrated per installation (§6.4): launch
//! latency, transfer bandwidth, and effective throughput are measured on
//! the target device rather than assumed. This binary is that
//! calibration step for the simulated device layer. It runs the
//! structured microbenchmark sweep from `kdesel_device::calibrate`,
//! fits all five `CostProfile` parameters by least squares (via
//! `kdesel-solver` L-BFGS), prints a modeled-vs-measured report, and
//! writes the `MeasuredProfile` JSON that `DeviceGroup::homogeneous`
//! and the serve scheduler's adaptive batching deadline consume.
//!
//! Exit codes: 0 success, 1 fit divergence or residual above `--gate`,
//! 2 usage or IO.

use kdesel_device::calibrate::{calibrate, PointOp};
use kdesel_device::{Backend, CalibrationConfig, MeasuredPoint};
use std::path::PathBuf;

const USAGE: &str = "\
kdesel-calibrate — fit a measured device cost profile

USAGE:
    kdesel-calibrate [--backend NAME] [--quick|--full] [--reps N]
                     [--out FILE] [--gate PCT]

options:
    --backend NAME   cpu-seq | cpu-par | sim-gpu (default cpu-seq)
    --quick          CI-sized sweep (default)
    --full           full (n, intensity, bytes) grid, more reps
    --reps N         wall-time repetitions per point (default 3 quick / 7 full)
    --out FILE       write the MeasuredProfile JSON here
    --gate PCT       fail (exit 1) if median residual exceeds PCT percent
";

fn fail_usage(msg: &str) -> ! {
    eprintln!("error: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .map(|i| match args.get(i + 1) {
            Some(v) => v.clone(),
            None => fail_usage(&format!("{flag} needs a value")),
        })
}

fn describe(point: &MeasuredPoint) -> String {
    match point.op {
        PointOp::Transfer => format!("transfer {:>9} B", point.bytes),
        PointOp::Kernel => format!(
            "kernel   n={:<7} f={:<5}",
            point.items, point.flops_per_item
        ),
        PointOp::Sweep => format!(
            "sweep    n={:<7} f={:<5}",
            point.items, point.flops_per_item
        ),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return;
    }
    for (i, a) in args.iter().enumerate() {
        let is_flag_value = i > 0
            && matches!(
                args[i - 1].as_str(),
                "--backend" | "--reps" | "--out" | "--gate"
            );
        if !is_flag_value
            && !matches!(
                a.as_str(),
                "--backend" | "--quick" | "--full" | "--reps" | "--out" | "--gate"
            )
        {
            fail_usage(&format!("unknown argument {a:?}"));
        }
    }

    let backend_name = arg_value(&args, "--backend").unwrap_or_else(|| "cpu-seq".to_string());
    let backend = Backend::from_name(&backend_name)
        .unwrap_or_else(|| fail_usage(&format!("unknown backend {backend_name:?}")));
    let quick = !args.iter().any(|a| a == "--full");
    let reps = match arg_value(&args, "--reps") {
        Some(v) => v
            .parse()
            .unwrap_or_else(|_| fail_usage(&format!("bad --reps {v:?}"))),
        None => {
            if quick {
                3
            } else {
                7
            }
        }
    };
    let out: Option<PathBuf> = arg_value(&args, "--out").map(PathBuf::from);
    let gate: Option<f64> = arg_value(&args, "--gate").map(|v| {
        v.parse()
            .unwrap_or_else(|_| fail_usage(&format!("bad --gate {v:?}")))
    });

    let config = CalibrationConfig { reps, quick };
    eprintln!(
        "calibrating {} ({} sweep, {} reps/point)...",
        backend.name(),
        if quick { "quick" } else { "full" },
        reps
    );
    let (measured, report) = calibrate(backend, &config);

    let p = &measured.profile;
    println!("fitted CostProfile for {}:", measured.backend);
    println!(
        "  kernel_launch_latency  {:>12.3e} s",
        p.kernel_launch_latency
    );
    println!("  transfer_latency       {:>12.3e} s", p.transfer_latency);
    println!(
        "  transfer_bandwidth     {:>12.3e} B/s",
        p.transfer_bandwidth
    );
    println!(
        "  compute_throughput     {:>12.3e} FLOP/s",
        p.compute_throughput
    );
    println!("  vector_width           {:>12.3}", p.vector_width);
    println!(
        "fit: {:?} after {} iterations, objective {:.3e}",
        report.outcome, report.iterations, report.objective
    );
    println!("modeled vs measured per point:");
    for point in &measured.points {
        println!(
            "  {}  measured {:>10.3e}s  modeled {:>10.3e}s  residual {:>6.1}%",
            describe(point),
            point.measured_seconds,
            point.modeled_seconds,
            point.residual * 100.0
        );
    }
    println!("median residual: {:.1}%", measured.median_residual * 100.0);

    if let Some(path) = &out {
        if let Err(e) = std::fs::write(path, measured.to_json()) {
            eprintln!("error: cannot write {}: {e}", path.display());
            std::process::exit(2);
        }
        eprintln!("wrote {}", path.display());
    }

    if !report.converged {
        eprintln!(
            "CALIBRATION FAILED: fit did not converge ({:?})",
            report.outcome
        );
        std::process::exit(1);
    }
    if let Some(gate_pct) = gate {
        let measured_pct = measured.median_residual * 100.0;
        if measured_pct > gate_pct {
            eprintln!(
                "CALIBRATION FAILED: median residual {measured_pct:.1}% > gate {gate_pct:.1}%"
            );
            std::process::exit(1);
        }
    }
}
