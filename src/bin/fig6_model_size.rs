//! Figure 6: estimation quality with growing model size.
//!
//! Forest 8D, DT workload; sample sizes 1024 … 32768; Heuristic, Batch and
//! Adaptive; mean absolute error over 100 test queries, 10 repetitions.

use kdesel_bench::{emit, Cli};
use kdesel_engine::experiments::scaling::{run_scaling, ScalingConfig};
use kdesel_engine::report::{fmt, TextTable};

fn main() {
    let cli = Cli::parse();
    let config = ScalingConfig {
        rows: cli.rows_or(20_000, 100_000),
        repetitions: cli.reps_or(2, 10),
        sample_sizes: if cli.full {
            (10..=15).map(|p| 1usize << p).collect()
        } else {
            (9..=12).map(|p| 1usize << p).collect()
        },
        train_queries: if cli.full { 100 } else { 50 },
        test_queries: if cli.full { 100 } else { 50 },
        seed: cli.seed.unwrap_or(0xf166),
        fast_optimizers: !cli.full,
        ..Default::default()
    };
    eprintln!(
        "# Figure 6: error vs model size (forest 8D, DT; rows={} reps={})",
        config.rows, config.repetitions
    );
    let result = run_scaling(&config);
    let mut table = TextTable::new([
        "sample_size",
        "estimator",
        "mean_error",
        "median",
        "q1",
        "q3",
    ]);
    for (si, &size) in result.sample_sizes.iter().enumerate() {
        for (kind, summaries) in &result.series {
            let s = &summaries[si];
            let f = s.five_numbers();
            table.row([
                size.to_string(),
                kind.name().to_string(),
                fmt(s.mean()),
                fmt(f.median),
                fmt(f.q1),
                fmt(f.q3),
            ]);
        }
    }
    emit(&cli, &table);
}
