//! Table 1: pairwise win-rate matrix across all static experiments.
//!
//! Pools the 3D and 8D runs (Figures 4 and 5) and prints, for every pair of
//! estimators, the percentage of experiments in which the row's estimator
//! produced a lower mean absolute error than the column's.

use kdesel_bench::{emit_winrates, Cli};
use kdesel_engine::experiments::static_quality::{figure_cells, run_static_cell, StaticConfig};
use kdesel_engine::experiments::winrate::WinRateMatrix;
use kdesel_engine::EstimatorKind;

fn main() {
    let cli = Cli::parse();
    // The paper's five, plus the bake-off families: the learned and
    // exact baselines and the hybrid router over all three.
    let mut estimators = EstimatorKind::ALL.to_vec();
    estimators.extend([
        EstimatorKind::Learned,
        EstimatorKind::Exact,
        EstimatorKind::Hybrid,
    ]);
    let config = StaticConfig {
        rows: cli.rows_or(6_000, 100_000),
        repetitions: cli.reps_or(2, 25),
        train_queries: if cli.full { 100 } else { 50 },
        test_queries: if cli.full { 300 } else { 100 },
        seed: cli.seed.unwrap_or(0x5e1ec7),
        fast_optimizers: !cli.full,
        estimators,
    };
    eprintln!(
        "# Table 1: win rates over all static experiments (rows={} reps={})",
        config.rows, config.repetitions
    );
    let mut matrix = WinRateMatrix::new(config.estimators.clone());
    for dims in [3usize, 8] {
        for cell in figure_cells(dims) {
            eprintln!(
                "# running {}D {} {} ...",
                dims,
                cell.dataset.name(),
                cell.workload.name()
            );
            let result = run_static_cell(cell, &config);
            matrix.add_cell(&result);
        }
    }
    emit_winrates(
        &cli,
        &matrix,
        "Table 1: win rates, all static experiments (%)",
    );
}
