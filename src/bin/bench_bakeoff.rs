//! Estimator bake-off benchmark (BENCH_bakeoff.json).
//!
//! Runs the three bake-off families — the self-tuning KDE, the learned
//! autoregressive model, and the exact scan — plus the hybrid router
//! over a mixed workload engineered so no single family wins
//! everywhere:
//!
//! * **small** — a 1.5K-row 3D table, where the exact scan is both
//!   cheap and perfect;
//! * **highdim** — an 8D table, the KDE's home turf (the paper's §6.2
//!   setting) with uniform-volume queries;
//! * **shifting** — a 4D table whose distribution shifts mid-segment
//!   via inserts. The KDE member follows through the reservoir and
//!   Karma; the learned and exact snapshots go deliberately stale, and
//!   the router has to catch them drifting through their q-error
//!   windows.
//!
//! Every family answers every query and receives the true selectivity
//! as feedback; q-errors use the observatory's smoothed metric. The
//! headline gate — enforced under `PERF_SMOKE=1` — is the bake-off's
//! acceptance criterion: the hybrid router's q-error p95 over the whole
//! mixed workload must not exceed the best single family's.
//!
//! Results go to `BENCH_bakeoff.json` (override with
//! `BENCH_BAKEOFF_OUT`).

use kdesel_bench::history::{record_and_gate, Direction, HistoryEntry, TrendSpec};
use kdesel_bench::{emit, Cli};
use kdesel_data::{generate_workload, Dataset, WorkloadKind, WorkloadSpec};
use kdesel_engine::estimators::BuildConfig;
use kdesel_engine::report::{fmt, TextTable};
use kdesel_engine::{AnyEstimator, EstimatorKind};
use kdesel_estimators::router::qerror;
use kdesel_estimators::Family;
use kdesel_storage::sampling;
use kdesel_types::{QueryFeedback, Summary};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Bake-off participants: the three single families, then the router.
const KINDS: [EstimatorKind; 4] = [
    EstimatorKind::Adaptive,
    EstimatorKind::Learned,
    EstimatorKind::Exact,
    EstimatorKind::Hybrid,
];
/// Report names aligned with the router's family vocabulary.
const NAMES: [&str; 4] = ["kde", "learned", "exact", "hybrid"];

struct Segment {
    label: &'static str,
    dims: usize,
    rows: usize,
    workload: WorkloadKind,
    /// Insert a shifted cluster halfway through the segment.
    shift: bool,
}

struct SegmentOutcome {
    label: &'static str,
    /// Per family (KINDS order), one q-error per query.
    qerrors: [Vec<f64>; 4],
    /// The hybrid's router decisions within this segment.
    decisions: [u64; 3],
}

fn run_segment(segment: &Segment, queries: usize, seed: u64) -> SegmentOutcome {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut table = Dataset::Synthetic.generate_projected(segment.dims, segment.rows, seed);
    let mut build = BuildConfig::paper_default(segment.dims).with_fast_optimizers();
    // A shifting workload rewards a reactive router: a shorter q-error
    // window evicts pre-shift scores faster, and sparser probes keep
    // the tail clean while still auditing the benched families.
    build.router.window = 32;
    build.router.probe_every = 32;
    let sample = sampling::sample_rows(&table, build.sample_points(segment.dims), &mut rng);
    let mut estimators: Vec<AnyEstimator> = KINDS
        .iter()
        .map(|&kind| AnyEstimator::build(kind, &table, &sample, &[], &build, &mut rng))
        .collect();

    let mut qerrors: [Vec<f64>; 4] = Default::default();
    let phases = if segment.shift { 2 } else { 1 };
    for phase in 0..phases {
        if phase == 1 {
            // The shift: a same-shape cluster displaced by +60 per
            // dimension (several bandwidths for this data). The table
            // and the KDE's reservoir see every insert; the learned and
            // exact snapshots do not — that staleness is the point.
            let extra =
                Dataset::Synthetic.generate_projected(segment.dims, segment.rows / 2, seed ^ 0x5f);
            for (_, row) in extra.rows() {
                let shifted: Vec<f64> = row.iter().map(|v| v + 60.0).collect();
                table.insert(&shifted);
                for e in &mut estimators {
                    e.handle_insert(&shifted, &mut rng);
                }
            }
        }
        let batch = generate_workload(
            &table,
            WorkloadSpec::paper(segment.workload),
            queries / phases,
            &mut rng,
        );
        for q in &batch {
            // Ground truth against the *live* table, so post-shift
            // queries punish stale snapshots.
            let actual = table.selectivity(&q.region);
            for (i, e) in estimators.iter_mut().enumerate() {
                let estimate = e.estimate(&q.region);
                qerrors[i].push(qerror(estimate, actual));
                let feedback = QueryFeedback {
                    region: q.region.clone(),
                    estimate,
                    actual,
                    cardinality: 0,
                };
                e.handle_feedback(&table, &feedback, &mut rng);
            }
        }
    }

    let decisions = match &estimators[3] {
        AnyEstimator::Hybrid { hybrid, .. } => hybrid.router().decisions(),
        _ => unreachable!("KINDS[3] is Hybrid"),
    };
    SegmentOutcome {
        label: segment.label,
        qerrors,
        decisions,
    }
}

fn p(values: &[f64], q: f64) -> f64 {
    let mut s = Summary::new();
    for &v in values {
        s.add(v);
    }
    s.quantile(q)
}

fn main() {
    let cli = Cli::parse();
    let queries = cli.rows_or(120, 300);
    let seed = cli.seed.unwrap_or(0xba6e);
    let segments = [
        Segment {
            label: "small",
            dims: 3,
            rows: 1_500,
            workload: WorkloadKind::DataVolume,
            shift: false,
        },
        Segment {
            label: "highdim",
            dims: 8,
            rows: if cli.full { 20_000 } else { 8_000 },
            workload: WorkloadKind::UniformVolume,
            shift: false,
        },
        Segment {
            label: "shifting",
            dims: 4,
            rows: 8_000,
            workload: WorkloadKind::DataTarget,
            shift: true,
        },
    ];
    eprintln!("# bake-off bench: {queries} queries per segment, seed {seed:#x}");

    let outcomes: Vec<SegmentOutcome> = segments
        .iter()
        .enumerate()
        .map(|(i, s)| {
            eprintln!("# segment {} ({}D, {} rows)...", s.label, s.dims, s.rows);
            run_segment(s, queries, seed.wrapping_add(i as u64))
        })
        .collect();

    // Pool q-errors across segments, per family.
    let pooled: Vec<Vec<f64>> = (0..4)
        .map(|i| {
            outcomes
                .iter()
                .flat_map(|o| o.qerrors[i].iter().copied())
                .collect()
        })
        .collect();
    let total_queries = pooled[0].len();

    // Win rates among the three single families: every family matching
    // the per-query minimum q-error gets the win (exact ties at 1.0 are
    // real, not noise).
    let mut wins = [0usize; 3];
    for ((&kde, &learned), &exact) in pooled[0].iter().zip(&pooled[1]).zip(&pooled[2]) {
        let errs = [kde, learned, exact];
        let best = errs.iter().cloned().fold(f64::INFINITY, f64::min);
        for (w, &e) in wins.iter_mut().zip(&errs) {
            if e <= best * (1.0 + 1e-12) {
                *w += 1;
            }
        }
    }

    let p50: Vec<f64> = pooled.iter().map(|v| p(v, 0.50)).collect();
    let p95: Vec<f64> = pooled.iter().map(|v| p(v, 0.95)).collect();
    let (best_single, best_p95) = (0..3)
        .map(|i| (i, p95[i]))
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("three single families");
    let hybrid_p95 = p95[3];

    let mut decisions = [0u64; 3];
    for o in &outcomes {
        for (total, d) in decisions.iter_mut().zip(o.decisions) {
            *total += d;
        }
    }

    let mut table = TextTable::new(["family", "qerr_p50", "qerr_p95", "win_rate"]);
    for i in 0..4 {
        table.row([
            NAMES[i].to_string(),
            fmt(p50[i]),
            fmt(p95[i]),
            if i < 3 {
                format!("{:.2}", wins[i] as f64 / total_queries as f64)
            } else {
                "-".to_string()
            },
        ]);
    }
    emit(&cli, &table);
    eprintln!(
        "# router decisions: kde {} / learned {} / exact {}; best single: {}",
        decisions[0], decisions[1], decisions[2], NAMES[best_single]
    );

    let family_json = |i: usize| {
        format!(
            "{{\"qerr_p50\": {:.4}, \"qerr_p95\": {:.4}, \"win_rate\": {:.4}}}",
            p50[i],
            p95[i],
            wins[i] as f64 / total_queries as f64
        )
    };
    let segment_json: Vec<String> = outcomes
        .iter()
        .map(|o| {
            let per_family: Vec<String> = (0..4)
                .map(|i| format!("\"{}\": {:.4}", NAMES[i], p(&o.qerrors[i], 0.95)))
                .collect();
            format!(
                "    {{\"segment\": \"{}\", \"qerr_p95\": {{{}}}, \"router_decisions\": [{}, {}, {}]}}",
                o.label,
                per_family.join(", "),
                o.decisions[0],
                o.decisions[1],
                o.decisions[2]
            )
        })
        .collect();
    let gate_ok = hybrid_p95 <= best_p95;
    let json = format!(
        "{{\n  \"config\": {{\"queries_per_segment\": {queries}, \"segments\": {}, \"seed\": {seed}}},\n  \"families\": {{\n    \"kde\": {},\n    \"learned\": {},\n    \"exact\": {}\n  }},\n  \"hybrid\": {{\"qerr_p50\": {:.4}, \"qerr_p95\": {:.4}, \"decisions\": {{\"kde\": {}, \"learned\": {}, \"exact\": {}}}}},\n  \"segments\": [\n{}\n  ],\n  \"gate\": {{\"hybrid_p95\": {:.4}, \"best_single\": \"{}\", \"best_single_p95\": {:.4}, \"ok\": {}}}\n}}\n",
        segments.len(),
        family_json(0),
        family_json(1),
        family_json(2),
        p50[3],
        hybrid_p95,
        decisions[Family::Kde.index()],
        decisions[Family::Learned.index()],
        decisions[Family::Exact.index()],
        segment_json.join(",\n"),
        hybrid_p95,
        NAMES[best_single],
        best_p95,
        gate_ok,
    );
    let out = std::env::var("BENCH_BAKEOFF_OUT").unwrap_or_else(|_| "BENCH_bakeoff.json".into());
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(2);
    }
    eprintln!("# wrote {out}");

    // --- Perf-smoke gate: the router must not lose to its best member.
    let gated = std::env::var("PERF_SMOKE").is_ok_and(|v| v == "1");
    if gate_ok {
        eprintln!(
            "# bakeoff gate ok: hybrid p95 {hybrid_p95:.3} <= best single ({}) {best_p95:.3}",
            NAMES[best_single]
        );
    } else {
        eprintln!(
            "PERF REGRESSION: hybrid p95 {hybrid_p95:.3} > best single ({}) {best_p95:.3}",
            NAMES[best_single]
        );
        if gated {
            std::process::exit(1);
        }
    }

    // --- Perf-trend history: stamp this run; gate when BENCH_TREND=1.
    record_and_gate(
        HistoryEntry::stamped(
            "bakeoff",
            vec![
                ("hybrid_p95".to_string(), hybrid_p95),
                ("hybrid_vs_best".to_string(), hybrid_p95 / best_p95),
            ],
        ),
        &[
            TrendSpec::new("hybrid_p95", Direction::LowerIsBetter, 0.3),
            TrendSpec::new("hybrid_vs_best", Direction::LowerIsBetter, 0.25),
        ],
    );
}
