//! Serving-layer benchmark (BENCH_serve.json).
//!
//! Two measurements over `kdesel-serve`:
//!
//! * **coalescing gate** — B concurrent submissions served by ONE fused
//!   `estimate_batch` launch vs the same B requests served one launch
//!   each (`max_batch = 1`). Modeled seconds come from the simulated GPU
//!   (GTX-460 profile) where they are deterministic; the run fails with
//!   exit 1 unless the coalesced path is at least 2x faster — small
//!   models sit in the paper's latency-bound flat region (Figure 7), so
//!   fusing B launches into one removes (B-1) launch+transfer latencies.
//! * **window sweep** — wall-clock throughput and end-to-end latency
//!   quantiles (p50/p99) for producer threads hammering one model while
//!   the batching window (`max_batch`) grows: the latency-vs-throughput
//!   trade the `ServeConfig` knobs control. The sweep runs twice, under
//!   the fixed `max_wait` policy and under the measured-cost adaptive
//!   policy (seeded from a `kdesel-calibrate`-style fitted profile);
//!   with `PERF_SMOKE=1` the run fails unless the adaptive sweep removes
//!   the large-batch throughput cliff the fixed policy shows when
//!   producers cannot fill the window.
//!
//! Results go to `BENCH_serve.json` (override with `BENCH_SERVE_OUT`).

use kdesel_bench::history::{record_and_gate, Direction, HistoryEntry, TrendSpec};
use kdesel_bench::{emit, Cli};
use kdesel_device::calibrate::{calibrate, CalibrationConfig};
use kdesel_device::{Backend, CostModel, Device};
use kdesel_engine::report::{fmt, TextTable};
use kdesel_kde::{KdeEstimator, KernelFn};
use kdesel_serve::{AdaptiveWaitConfig, ModelKey, ServeConfig, ServedModel, Service};
use kdesel_types::Rect;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

struct SweepPoint {
    max_batch: usize,
    throughput_rps: f64,
    p50_latency_seconds: f64,
    p99_latency_seconds: f64,
    coalescing_ratio: f64,
    batches: u64,
}

fn make_regions(count: usize, dims: usize, rng: &mut StdRng) -> Vec<Rect> {
    (0..count)
        .map(|_| {
            let intervals: Vec<(f64, f64)> = (0..dims)
                .map(|_| {
                    let lo = rng.gen_range(0.0..70.0);
                    (lo, lo + rng.gen_range(5.0..30.0))
                })
                .collect();
            Rect::from_intervals(&intervals)
        })
        .collect()
}

fn build_service(
    backend: Backend,
    sample: &[f64],
    dims: usize,
    max_batch: usize,
    adaptive: Option<AdaptiveWaitConfig>,
) -> Service {
    Service::builder(ServeConfig {
        max_batch,
        max_wait: Duration::from_micros(200),
        adaptive_wait: adaptive,
        ..ServeConfig::default()
    })
    .register(
        ModelKey::new("bench", &["x"]),
        ServedModel::fixed(KdeEstimator::new(
            Device::new(backend),
            sample,
            dims,
            KernelFn::Gaussian,
        )),
    )
    .build()
    .expect("service build")
}

fn quantile(sorted: &[f64], q: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx]
}

fn main() {
    let cli = Cli::parse();
    let dims = 4;
    let points = cli.rows_or(1 << 10, 1 << 13);
    let producers = if cli.full { 16 } else { 8 };
    let per_producer = cli.reps_or(60, 250);
    let gate_batch = 16;
    let seed = cli.seed.unwrap_or(0x5e4e);
    eprintln!(
        "# serve bench: {points} sample points, {dims}D, {producers} producers x {per_producer} reqs, gate batch {gate_batch}"
    );

    let mut rng = StdRng::seed_from_u64(seed);
    let sample: Vec<f64> = (0..points * dims)
        .map(|_| rng.gen_range(0.0..100.0))
        .collect();
    let key = ModelKey::new("bench", &["x"]);
    let gate_regions = make_regions(gate_batch, dims, &mut rng);
    let sweep_regions = make_regions(64, dims, &mut rng);

    // --- Coalescing gate (deterministic, SimGpu modeled time). ---
    // Coalesced: B async submissions, one fused launch.
    let service = build_service(Backend::SimGpu, &sample, dims, gate_batch, None);
    let handle = service.handle();
    let before = handle.report(&key).unwrap();
    let pending: Vec<_> = gate_regions
        .iter()
        .map(|q| handle.submit(&key, q).unwrap())
        .collect();
    for p in pending {
        p.wait().unwrap();
    }
    let after = handle.report(&key).unwrap();
    let coalesced_modeled = after.modeled_seconds - before.modeled_seconds;
    let coalesced_kernels = after.device.kernels - before.device.kernels;
    let coalesced_batches = after.batches;
    service.shutdown().unwrap();

    // One-request-per-launch: the same B requests, max_batch = 1.
    let service = build_service(Backend::SimGpu, &sample, dims, 1, None);
    let handle = service.handle();
    let before = handle.report(&key).unwrap();
    for q in &gate_regions {
        handle.estimate(&key, q).unwrap();
    }
    let after = handle.report(&key).unwrap();
    let single_modeled = after.modeled_seconds - before.modeled_seconds;
    let single_kernels = after.device.kernels - before.device.kernels;
    service.shutdown().unwrap();

    let modeled_speedup = single_modeled / coalesced_modeled;
    eprintln!(
        "# coalescing gate: {gate_batch} requests — coalesced {coalesced_modeled:.3e}s modeled \
         ({coalesced_kernels} launches, {coalesced_batches} batches) vs single {single_modeled:.3e}s \
         ({single_kernels} launches) → {modeled_speedup:.1}x"
    );

    // --- Measured-cost seed for the adaptive policy: fit a CostProfile
    // on the sweep backend (the kdesel-calibrate pipeline) and price one
    // single-request fused launch with it.
    let calib_config = CalibrationConfig {
        reps: if cli.full { 3 } else { 2 },
        quick: true,
    };
    let (measured, fit_report) = calibrate(Backend::CpuPar, &calib_config);
    let seed_launch = CostModel::new(measured.profile)
        .kernel_vectorized(points, KernelFn::Gaussian.flops_per_factor() * dims as f64);
    eprintln!(
        "# calibration: {} median residual {:.1}%, adaptive seed launch {:.3e}s",
        if fit_report.converged {
            "converged,"
        } else {
            "DIVERGED,"
        },
        measured.median_residual * 100.0,
        seed_launch
    );

    // --- Window sweep (wall clock, multicore CPU backend), under the
    // fixed max_wait policy and under the adaptive measured-cost policy.
    let windows: &[usize] = if cli.full {
        &[1, 2, 4, 8, 16, 32, 64]
    } else {
        &[1, 4, 16, 64]
    };
    let run_sweep = |adaptive: Option<AdaptiveWaitConfig>| -> Vec<SweepPoint> {
        let mut sweep = Vec::new();
        for &max_batch in windows {
            let service =
                build_service(Backend::CpuPar, &sample, dims, max_batch, adaptive.clone());
            let handle = service.handle();
            let started = Instant::now();
            let mut latencies: Vec<f64> = std::thread::scope(|scope| {
                let workers: Vec<_> = (0..producers)
                    .map(|p| {
                        let handle = handle.clone();
                        let key = &key;
                        let regions = &sweep_regions;
                        scope.spawn(move || {
                            let mut lat = Vec::with_capacity(per_producer);
                            for i in 0..per_producer {
                                let q = &regions[(p + i * producers) % regions.len()];
                                let t = Instant::now();
                                handle.estimate(key, q).unwrap();
                                lat.push(t.elapsed().as_secs_f64());
                            }
                            lat
                        })
                    })
                    .collect();
                workers
                    .into_iter()
                    .flat_map(|w| w.join().unwrap())
                    .collect()
            });
            let wall = started.elapsed().as_secs_f64();
            let report = handle.report(&key).unwrap();
            service.shutdown().unwrap();
            latencies.sort_by(f64::total_cmp);
            sweep.push(SweepPoint {
                max_batch,
                throughput_rps: latencies.len() as f64 / wall,
                p50_latency_seconds: quantile(&latencies, 0.50),
                p99_latency_seconds: quantile(&latencies, 0.99),
                coalescing_ratio: report.coalescing_ratio(),
                batches: report.batches,
            });
        }
        sweep
    };
    let sweep = run_sweep(None);
    let sweep_adaptive = run_sweep(Some(AdaptiveWaitConfig::seeded(seed_launch)));

    // --- Report. ---
    let mut table = TextTable::new([
        "policy",
        "max_batch",
        "throughput_rps",
        "p50_ms",
        "p99_ms",
        "coalesce_ratio",
        "batches",
    ]);
    for (policy, points) in [("fixed", &sweep), ("adaptive", &sweep_adaptive)] {
        for s in points {
            table.row([
                policy.to_string(),
                s.max_batch.to_string(),
                fmt(s.throughput_rps),
                fmt(s.p50_latency_seconds * 1e3),
                fmt(s.p99_latency_seconds * 1e3),
                fmt(s.coalescing_ratio),
                s.batches.to_string(),
            ]);
        }
    }
    emit(&cli, &table);

    let sweep_json = |points: &[SweepPoint]| -> String {
        points
            .iter()
            .map(|s| {
                format!(
                    "    {{\"max_batch\": {}, \"throughput_rps\": {:.1}, \"p50_latency_seconds\": {:e}, \"p99_latency_seconds\": {:e}, \"coalescing_ratio\": {:.3}, \"batches\": {}}}",
                    s.max_batch,
                    s.throughput_rps,
                    s.p50_latency_seconds,
                    s.p99_latency_seconds,
                    s.coalescing_ratio,
                    s.batches
                )
            })
            .collect::<Vec<_>>()
            .join(",\n")
    };
    let json = format!(
        "{{\n  \"config\": {{\"points\": {points}, \"dims\": {dims}, \"producers\": {producers}, \"per_producer\": {per_producer}, \"seed\": {seed}}},\n  \"coalescing_gate\": {{\n    \"batch\": {gate_batch},\n    \"coalesced\": {{\"modeled_seconds\": {coalesced_modeled:e}, \"kernels\": {coalesced_kernels}}},\n    \"single\": {{\"modeled_seconds\": {single_modeled:e}, \"kernels\": {single_kernels}}},\n    \"modeled_speedup\": {modeled_speedup:.3}\n  }},\n  \"calibration\": {{\"backend\": \"{}\", \"converged\": {}, \"median_residual\": {:.4}, \"seed_launch_seconds\": {seed_launch:e}}},\n  \"window_sweep\": [\n{}\n  ],\n  \"window_sweep_adaptive\": [\n{}\n  ]\n}}\n",
        measured.backend,
        fit_report.converged,
        measured.median_residual,
        sweep_json(&sweep),
        sweep_json(&sweep_adaptive)
    );
    let out = std::env::var("BENCH_SERVE_OUT").unwrap_or_else(|_| "BENCH_serve.json".into());
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(2);
    }
    eprintln!("# wrote {out}");

    // --- Perf gate: coalescing must pay off at batch >= 16. Modeled
    // seconds are deterministic, so this never flakes on machine noise.
    if modeled_speedup < 2.0 {
        eprintln!(
            "PERF REGRESSION: coalesced serving only {modeled_speedup:.2}x faster than \
             one-request-per-launch (need >= 2x at batch {gate_batch})"
        );
        std::process::exit(1);
    }
    eprintln!("# perf gate ok: coalescing speedup {modeled_speedup:.1}x >= 2x");

    // --- Cliff gate (wall clock, so opt-in like bench_simd's): with the
    // adaptive deadline, a window producers can't fill must not stall
    // the scheduler — throughput at max_batch=16 has to stay within 35%
    // of the best small-window throughput.
    if std::env::var("PERF_SMOKE").is_ok() {
        let best_small = sweep_adaptive
            .iter()
            .filter(|s| s.max_batch <= 4)
            .map(|s| s.throughput_rps)
            .fold(0.0, f64::max);
        let at_16 = sweep_adaptive
            .iter()
            .find(|s| s.max_batch == 16)
            .map(|s| s.throughput_rps)
            .unwrap_or(0.0);
        let threshold = 0.65 * best_small;
        if at_16 < threshold {
            eprintln!(
                "PERF REGRESSION: adaptive window sweep throughput at max_batch=16 is \
                 {at_16:.0} rps < threshold {threshold:.0} rps (0.65 x best small-window \
                 {best_small:.0} rps) — the large-batch cliff is back"
            );
            std::process::exit(1);
        }
        eprintln!(
            "# perf gate ok: adaptive max_batch=16 throughput {at_16:.0} rps >= {threshold:.0} rps \
             (0.65 x best small-window {best_small:.0} rps)"
        );
    }

    // --- Perf-trend history: stamp this run; gate when BENCH_TREND=1.
    let rps_at = |points: &[SweepPoint]| {
        points
            .iter()
            .find(|s| s.max_batch == 16)
            .map(|s| s.throughput_rps)
            .unwrap_or(0.0)
    };
    record_and_gate(
        HistoryEntry::stamped(
            "serve",
            vec![
                ("modeled_speedup".to_string(), modeled_speedup),
                ("rps_fixed_16".to_string(), rps_at(&sweep)),
                ("rps_adaptive_16".to_string(), rps_at(&sweep_adaptive)),
                (
                    "calibration_median_residual".to_string(),
                    measured.median_residual,
                ),
            ],
        ),
        &[
            // Modeled speedup is deterministic — any drift is structural.
            TrendSpec::new("modeled_speedup", Direction::HigherIsBetter, 0.25),
            // Wall-clock throughput gets wide machine-noise headroom.
            TrendSpec::new("rps_adaptive_16", Direction::HigherIsBetter, 0.4),
        ],
    );
}
