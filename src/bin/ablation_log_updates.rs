//! Ablation: logarithmic vs. linear bandwidth updates (§5.5).
//!
//! The paper: "we found that updating the logarithm of the bandwidth often
//! leads to improved estimates... we observed improvements over the
//! non-logarithmic case in 68% of all experiments." This binary reruns that
//! comparison across datasets × workloads and reports the win fraction.

use kdesel_bench::{emit, Cli};
use kdesel_engine::experiments::ablation::{run_log_update_ablation, AblationConfig};
use kdesel_engine::report::{fmt, TextTable};

fn main() {
    let cli = Cli::parse();
    let config = AblationConfig {
        rows: cli.rows_or(5_000, 20_000),
        repetitions: cli.reps_or(2, 10),
        queries: if cli.full { 400 } else { 150 },
        seed: cli.seed.unwrap_or(0xab1a),
        ..Default::default()
    };
    eprintln!(
        "# Ablation: log vs linear adaptive updates (rows={} reps={} queries={})",
        config.rows, config.repetitions, config.queries
    );
    let result = run_log_update_ablation(&config);
    let mut table = TextTable::new([
        "dataset",
        "workload",
        "rep",
        "log_error",
        "linear_error",
        "log_wins",
    ]);
    for (dataset, workload, rep, log, lin) in &result.experiments {
        table.row([
            dataset.name().to_string(),
            workload.name().to_string(),
            rep.to_string(),
            fmt(*log),
            fmt(*lin),
            (log < lin).to_string(),
        ]);
    }
    emit(&cli, &table);
    println!(
        "\nlogarithmic updates better in {:.1}% of {} experiments (paper: 68%)",
        100.0 * result.log_win_fraction(),
        result.experiments.len()
    );
}
