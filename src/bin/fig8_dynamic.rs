//! Figure 8 binary — see [`kdesel_bench::fig8`].

fn main() {
    kdesel_bench::fig8::run();
}
