//! Figure 5: estimation quality on static 8D datasets.
//!
//! Same protocol as Figure 4 at dimensionality 8; see `fig4_static_3d`.

use kdesel_bench::{run_static_figure, Cli};

fn main() {
    run_static_figure(
        &Cli::parse(),
        8,
        "Figure 5: static estimation quality, 8D datasets",
    );
}
