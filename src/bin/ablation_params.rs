//! Ablation: sensitivity of the adaptive estimator's parameters.
//!
//! Sweeps the mini-batch size `N` (paper §4.1: "a value around 10 works
//! well"), the Karma saturation cap `K_max` (footnote 3: 4), and the Karma
//! replacement threshold (unspecified in the paper; −2 is this
//! repository's default) on the synthetic dataset's DT workload.

use kdesel_bench::{emit, Cli};
use kdesel_engine::experiments::ablation::{run_parameter_sweep, AblationConfig};
use kdesel_engine::report::{fmt, TextTable};

fn main() {
    let cli = Cli::parse();
    let config = AblationConfig {
        rows: cli.rows_or(5_000, 20_000),
        repetitions: cli.reps_or(2, 10),
        queries: if cli.full { 400 } else { 150 },
        seed: cli.seed.unwrap_or(0xab1a),
        ..Default::default()
    };
    eprintln!(
        "# Ablation: adaptive-estimator parameter sweep (rows={} reps={})",
        config.rows, config.repetitions
    );
    let points = run_parameter_sweep(&config);
    let mut table = TextTable::new(["parameter", "value", "mean_error"]);
    for p in &points {
        table.row([p.parameter.to_string(), p.value.to_string(), fmt(p.error)]);
    }
    emit(&cli, &table);
}
