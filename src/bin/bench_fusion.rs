//! Fusion/batching microbenchmark (BENCH_fusion.json).
//!
//! Measures the two rewired hot paths against their unfused/looped
//! equivalents:
//!
//! * **estimate hot path** — fused `estimate_with_gradient` vs separate
//!   `estimate` + `estimator_gradient` calls (the adaptive tuner's
//!   per-query work, §5.5),
//! * **batch objective** — one `WorkloadObjective` evaluation vs the
//!   per-query loop it replaced (the batch optimizer's per-iteration work),
//! * **batched estimates** — `estimate_batch` vs looped `estimate`.
//!
//! Wall-clock numbers come from the multicore CPU backend; modeled seconds
//! and launch counts from the simulated GPU (GTX-460 profile), where they
//! are deterministic. Results go to `BENCH_fusion.json` (override with
//! `BENCH_FUSION_OUT`). When `BENCH_FUSION_BASELINE` names a previous
//! report, the run fails with exit 1 if the modeled estimate hot path
//! regressed by more than 2x — the perf-smoke gate.

use kdesel_bench::history::{record_and_gate, Direction, HistoryEntry, TrendSpec};
use kdesel_bench::{emit, Cli};
use kdesel_device::{Backend, Device, DeviceStats};
use kdesel_engine::report::{fmt, TextTable};
use kdesel_kde::{KdeEstimator, KernelFn, LossFunction, WorkloadObjective};
use kdesel_solver::Objective;
use kdesel_types::{LabelledQuery, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Instant;

/// One measured code path.
struct PathReport {
    label: &'static str,
    wall_seconds: f64,
    modeled_seconds: f64,
    kernels: u64,
    transfers: u64,
}

/// Median wall time of `reps` runs of `f`.
fn wall_median(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// Modeled-time + stats snapshot; subtract two to get a delta.
fn snap(device: &Device) -> (f64, DeviceStats) {
    (device.modeled_seconds(), device.stats())
}

/// Modeled seconds and launch/transfer deltas between two snapshots.
fn delta(before: (f64, DeviceStats), after: (f64, DeviceStats)) -> (f64, DeviceStats) {
    let stats = DeviceStats {
        uploads: after.1.uploads - before.1.uploads,
        downloads: after.1.downloads - before.1.downloads,
        kernels: after.1.kernels - before.1.kernels,
        ..Default::default()
    };
    (after.0 - before.0, stats)
}

fn transfers(s: &DeviceStats) -> u64 {
    s.uploads + s.downloads
}

/// Pulls a float out of our own emitted JSON by following a key path.
fn extract_f64(json: &str, keys: &[&str]) -> Option<f64> {
    let mut pos = 0;
    for k in keys {
        let needle = format!("\"{k}\"");
        pos += json[pos..].find(&needle)? + needle.len();
    }
    let rest = json[pos..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| c == ',' || c == '}' || c.is_whitespace())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn json_path(r: &PathReport) -> String {
    format!(
        "{{\"wall_seconds\": {:e}, \"modeled_seconds\": {:e}, \"kernels\": {}, \"transfers\": {}}}",
        r.wall_seconds, r.modeled_seconds, r.kernels, r.transfers
    )
}

fn main() {
    let cli = Cli::parse();
    let dims = 8;
    let points = cli.rows_or(1 << 12, 1 << 16);
    let batch = if cli.full { 64 } else { 16 };
    let reps = cli.reps_or(7, 25);
    let seed = cli.seed.unwrap_or(0xf05e);
    eprintln!(
        "# fusion microbench: {points} sample points, {dims}D, batch of {batch}, {reps} reps"
    );

    let mut rng = StdRng::seed_from_u64(seed);
    let sample: Vec<f64> = (0..points * dims)
        .map(|_| rng.gen_range(0.0..100.0))
        .collect();
    let queries: Vec<LabelledQuery> = (0..batch)
        .map(|_| {
            let center: Vec<f64> = (0..dims).map(|_| rng.gen_range(20.0..80.0)).collect();
            let extent: Vec<f64> = (0..dims).map(|_| rng.gen_range(10.0..40.0)).collect();
            LabelledQuery::new(Rect::centered(&center, &extent), rng.gen_range(0.0..0.2))
        })
        .collect();
    let regions: Vec<Rect> = queries.iter().map(|q| q.region.clone()).collect();
    let query = &regions[0];

    let make = |backend| KdeEstimator::new(Device::new(backend), &sample, dims, KernelFn::Gaussian);
    let mut cpu = make(Backend::CpuPar);
    let mut gpu = make(Backend::SimGpu);

    // --- Estimate hot path: fused estimate+gradient vs two sweeps. ---
    let before = snap(gpu.device());
    black_box(gpu.estimate_with_gradient(query));
    let (m_fused, s_fused) = delta(before, snap(gpu.device()));
    let before = snap(gpu.device());
    black_box(gpu.estimate(query));
    black_box(gpu.estimator_gradient(query));
    let (m_unfused, s_unfused) = delta(before, snap(gpu.device()));
    let hot_fused = PathReport {
        label: "estimate_hot_path/fused",
        wall_seconds: wall_median(reps, || {
            black_box(cpu.estimate_with_gradient(query));
        }),
        modeled_seconds: m_fused,
        kernels: s_fused.kernels,
        transfers: transfers(&s_fused),
    };
    let hot_unfused = PathReport {
        label: "estimate_hot_path/unfused",
        wall_seconds: wall_median(reps, || {
            black_box(cpu.estimate(query));
            black_box(cpu.estimator_gradient(query));
        }),
        modeled_seconds: m_unfused,
        kernels: s_unfused.kernels,
        transfers: transfers(&s_unfused),
    };

    // --- Batch objective: one fused batched eval vs the per-query loop. ---
    let h: Vec<f64> = cpu.bandwidth().to_vec();
    let x: Vec<f64> = h.iter().map(|v| v.ln()).collect();
    let cpu_obj = WorkloadObjective::new(&cpu, &queries, LossFunction::Quadratic, true);
    let mut grad = vec![0.0; dims];
    let obj_fused_wall = wall_median(reps, || {
        black_box(cpu_obj.eval(&x, &mut grad));
    });
    let (obj_fused_modeled, obj_fused_stats) = {
        let gpu_obj = WorkloadObjective::new(&gpu, &queries, LossFunction::Quadratic, true);
        let before = snap(gpu.device());
        black_box(gpu_obj.eval(&x, &mut grad));
        delta(before, snap(gpu.device()))
    };
    // The pre-fusion objective: per query, one estimate sweep plus one
    // gradient sweep at the candidate bandwidth, folded on the host.
    let looped_objective = |est: &mut KdeEstimator| {
        let mut value = 0.0;
        let mut g = vec![0.0; dims];
        for q in &queries {
            let e = est.estimate(&q.region);
            let pg = est.estimator_gradient(&q.region);
            value += LossFunction::Quadratic.value(e, q.selectivity);
            let scale = LossFunction::Quadratic.dvalue_destimate(e, q.selectivity);
            for (a, b) in g.iter_mut().zip(&pg) {
                *a += scale * b;
            }
        }
        black_box((value / batch as f64, g));
    };
    let obj_looped_wall = wall_median(reps, || looped_objective(&mut cpu));
    let before = snap(gpu.device());
    looped_objective(&mut gpu);
    let (obj_looped_modeled, obj_looped_stats) = delta(before, snap(gpu.device()));
    let obj_fused = PathReport {
        label: "batch_objective/fused_batched",
        wall_seconds: obj_fused_wall,
        modeled_seconds: obj_fused_modeled,
        kernels: obj_fused_stats.kernels,
        transfers: transfers(&obj_fused_stats),
    };
    let obj_looped = PathReport {
        label: "batch_objective/looped_unfused",
        wall_seconds: obj_looped_wall,
        modeled_seconds: obj_looped_modeled,
        kernels: obj_looped_stats.kernels,
        transfers: transfers(&obj_looped_stats),
    };

    // --- Batched estimates vs looped estimates. ---
    let before = snap(gpu.device());
    black_box(gpu.estimate_batch(&regions));
    let (m_batched, s_batched) = delta(before, snap(gpu.device()));
    let before = snap(gpu.device());
    for q in &regions {
        black_box(gpu.estimate(q));
    }
    let (m_looped, s_looped) = delta(before, snap(gpu.device()));
    let est_batched = PathReport {
        label: "batched_estimates/batched",
        wall_seconds: wall_median(reps, || {
            black_box(cpu.estimate_batch(&regions));
        }),
        modeled_seconds: m_batched,
        kernels: s_batched.kernels,
        transfers: transfers(&s_batched),
    };
    let est_looped = PathReport {
        label: "batched_estimates/looped",
        wall_seconds: wall_median(reps, || {
            for q in &regions {
                black_box(cpu.estimate(q));
            }
        }),
        modeled_seconds: m_looped,
        kernels: s_looped.kernels,
        transfers: transfers(&s_looped),
    };

    // --- Report. ---
    let rows = [
        &hot_fused,
        &hot_unfused,
        &obj_fused,
        &obj_looped,
        &est_batched,
        &est_looped,
    ];
    let mut table = TextTable::new(["path", "wall_ms", "modeled_ms", "kernels", "transfers"]);
    for r in rows {
        table.row([
            r.label.to_string(),
            fmt(r.wall_seconds * 1e3),
            fmt(r.modeled_seconds * 1e3),
            r.kernels.to_string(),
            r.transfers.to_string(),
        ]);
    }
    emit(&cli, &table);
    let speedup = |a: &PathReport, b: &PathReport| b.wall_seconds / a.wall_seconds;
    println!(
        "# wall speedups: estimate_hot_path {:.2}x, batch_objective {:.2}x, batched_estimates {:.2}x",
        speedup(&hot_fused, &hot_unfused),
        speedup(&obj_fused, &obj_looped),
        speedup(&est_batched, &est_looped),
    );

    let json = format!(
        "{{\n  \"config\": {{\"points\": {points}, \"dims\": {dims}, \"batch\": {batch}, \"reps\": {reps}, \"seed\": {seed}}},\n  \"estimate_hot_path\": {{\n    \"fused\": {},\n    \"unfused\": {},\n    \"wall_speedup\": {:.3}\n  }},\n  \"batch_objective\": {{\n    \"fused_batched\": {},\n    \"looped_unfused\": {},\n    \"wall_speedup\": {:.3}\n  }},\n  \"batched_estimates\": {{\n    \"batched\": {},\n    \"looped\": {},\n    \"wall_speedup\": {:.3}\n  }}\n}}\n",
        json_path(&hot_fused),
        json_path(&hot_unfused),
        speedup(&hot_fused, &hot_unfused),
        json_path(&obj_fused),
        json_path(&obj_looped),
        speedup(&obj_fused, &obj_looped),
        json_path(&est_batched),
        json_path(&est_looped),
        speedup(&est_batched, &est_looped),
    );
    let out = std::env::var("BENCH_FUSION_OUT").unwrap_or_else(|_| "BENCH_fusion.json".into());
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(2);
    }
    eprintln!("# wrote {out}");

    // --- Perf-smoke gate: modeled estimate hot path vs baseline. ---
    if let Ok(baseline_path) = std::env::var("BENCH_FUSION_BASELINE") {
        let baseline = match std::fs::read_to_string(&baseline_path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("cannot read baseline {baseline_path}: {e}");
                std::process::exit(2);
            }
        };
        let Some(base) = extract_f64(
            &baseline,
            &["estimate_hot_path", "fused", "modeled_seconds"],
        ) else {
            eprintln!("baseline {baseline_path} has no estimate_hot_path.fused.modeled_seconds");
            std::process::exit(2);
        };
        // Modeled seconds are deterministic: a change here means the fused
        // hot path's launch/flop structure changed, not machine noise.
        if hot_fused.modeled_seconds > 2.0 * base {
            eprintln!(
                "PERF REGRESSION: modeled estimate hot path {:.3e}s > 2x baseline {:.3e}s",
                hot_fused.modeled_seconds, base
            );
            std::process::exit(1);
        }
        eprintln!(
            "# perf gate ok: modeled estimate hot path {:.3e}s vs baseline {:.3e}s",
            hot_fused.modeled_seconds, base
        );
    }

    // --- Perf-trend history: stamp this run; gate when BENCH_TREND=1.
    record_and_gate(
        HistoryEntry::stamped(
            "fusion",
            vec![
                (
                    "hot_path_modeled_seconds".to_string(),
                    hot_fused.modeled_seconds,
                ),
                (
                    "hot_path_wall_speedup".to_string(),
                    speedup(&hot_fused, &hot_unfused),
                ),
                (
                    "batch_objective_wall_speedup".to_string(),
                    speedup(&obj_fused, &obj_looped),
                ),
            ],
        ),
        &[
            // Modeled seconds are deterministic — drift means the fused
            // hot path's launch/flop structure changed.
            TrendSpec::new("hot_path_modeled_seconds", Direction::LowerIsBetter, 0.25),
            // Wall speedups get wide machine-noise headroom.
            TrendSpec::new("hot_path_wall_speedup", Direction::HigherIsBetter, 0.5),
        ],
    );
}
