//! Multi-device group sweep benchmark (BENCH_multi.json).
//!
//! Measures the sharded, work-stealing [`DeviceGroup`] sweep in *modeled*
//! device time — the quantity the simulated-GPU backend exists to
//! produce — on two axes:
//!
//! * **homogeneous scaling** — one logical sweep over 1/2/4 identical
//!   simulated GTX-460s, stealing off so the shares are exact and the
//!   ratio deterministic. Each member is charged one persistent launch
//!   for its share of the stripe blocks, so group size N divides the
//!   compute term while paying N launch latencies in parallel; the gate
//!   requires the 4-device group to clear 3x single-device throughput.
//! * **mixed-group stealing** — a full-rate CPU device paired with a
//!   10%-fission simulated GPU, both seeded *equal* block halves
//!   (`Partition::Equal`). The static-split baseline disables stealing,
//!   so the laggard's half dominates the parallel makespan; the
//!   treatment enables stealing under virtual-clock pacing
//!   ([`DeviceGroup::with_pace`]), letting the fast member drain the
//!   laggard's queue. The gate requires ≥ 1.5x over the static split.
//!
//! Pacing makes wall-clock block claims track *modeled* throughput
//! (SimGpu executes at real CPU speed and is only slow on the model's
//! clock); estimates are bitwise-unchanged by it — only the claim
//! interleaving, and therefore the modeled makespan, moves.
//!
//! Results go to `BENCH_multi.json` (override with `BENCH_MULTI_OUT`).
//! With `PERF_SMOKE=1` the run fails (exit 1) if either gate misses.

use kdesel_bench::history::{record_and_gate, Direction, HistoryEntry, TrendSpec};
use kdesel_bench::{emit, Cli};
use kdesel_device::{Backend, CostProfile, Device, DeviceGroup, Partition};
use kdesel_engine::report::{fmt, TextTable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

const DIMS: usize = 4;
/// Modeled arithmetic per row: a Gaussian-kernel-sized charge so launch
/// latency is a realistic (small) fraction of each member's sweep.
const FLOPS_PER_ROW: f64 = 480.0;
/// Wall seconds per modeled second for the paced runs — large enough
/// that per-block sleeps dwarf the real kernel wall time, so claim
/// interleaving tracks the model rather than the host CPU.
const PACE: f64 = 20.0;

/// One group configuration's measurement, in modeled device time.
struct SweepReport {
    label: String,
    /// Modeled parallel seconds per sweep (slowest member's share).
    modeled_seconds: f64,
    /// Modeled throughput in sample rows per modeled second.
    rows_per_second: f64,
    steals: u64,
}

/// Runs `reps` group sweeps and reports the per-sweep modeled makespan.
fn run_sweeps(group: &DeviceGroup, sample: &[f64], partition: Partition, reps: usize) -> f64 {
    let part = group.stage_partitioned_soa_with(sample, DIMS, partition);
    let rows = part.rows();
    // Warm the pools and queues once, then measure a clean ledger.
    run_one(group, &part);
    group.reset_timing();
    for _ in 0..reps {
        run_one(group, &part);
    }
    let per_sweep = group.modeled_seconds_parallel() / reps as f64;
    black_box(rows);
    per_sweep
}

fn run_one(group: &DeviceGroup, part: &kdesel_device::PartitionedSoa) {
    let (sum, _) = group.sweep_reduce(part, FLOPS_PER_ROW, false, |view, out| {
        for (r, slot) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for d in 0..DIMS {
                let x = view.col(d)[r];
                acc += x * (1.0 + 0.25 * x);
            }
            *slot = acc;
        }
    });
    black_box(sum);
}

fn json_sweep(r: &SweepReport) -> String {
    format!(
        "{{\"modeled_seconds\": {:e}, \"rows_per_second\": {:e}, \"steals\": {}}}",
        r.modeled_seconds, r.rows_per_second, r.steals
    )
}

fn main() {
    let cli = Cli::parse();
    let rows = cli.rows_or(1 << 17, 1 << 18);
    let reps = cli.reps_or(3, 5);
    let seed = cli.seed.unwrap_or(0x517a);
    eprintln!("# multi-device bench: {rows} rows, {DIMS}D, {reps} reps, modeled time");

    let mut rng = StdRng::seed_from_u64(seed);
    let sample: Vec<f64> = (0..rows * DIMS)
        .map(|_| rng.gen_range(0.0..100.0))
        .collect();

    // --- Homogeneous scaling: 1/2/4 identical simulated GPUs. ---
    let mut homogeneous = Vec::new();
    for n in [1usize, 2, 4] {
        // Stealing off: identical members keep their exact block shares,
        // so the scaling ratio is deterministic (no claim-race jitter).
        // The mixed arm below is the one that measures stealing.
        let group = DeviceGroup::homogeneous(Backend::SimGpu, CostProfile::gtx460(), n)
            .with_stealing(false);
        let modeled = run_sweeps(&group, &sample, Partition::Profile, reps);
        homogeneous.push(SweepReport {
            label: format!("simgpu x{n}"),
            modeled_seconds: modeled,
            rows_per_second: rows as f64 / modeled,
            steals: group.stats().steals,
        });
    }
    let scaling_4x = homogeneous[2].rows_per_second / homogeneous[0].rows_per_second;

    // --- Mixed group: static equal split vs work stealing. ---
    let mixed_members = || {
        vec![
            Device::with_profile(Backend::CpuPar, CostProfile::xeon_e5620_opencl()),
            Device::with_profile(Backend::SimGpu, CostProfile::gtx460()).fission(0.1),
        ]
    };
    let static_group = DeviceGroup::new(mixed_members()).with_stealing(false);
    let static_modeled = run_sweeps(&static_group, &sample, Partition::Equal, reps);
    let static_split = SweepReport {
        label: "mixed static".into(),
        modeled_seconds: static_modeled,
        rows_per_second: rows as f64 / static_modeled,
        steals: static_group.stats().steals,
    };

    let steal_group = DeviceGroup::new(mixed_members()).with_pace(PACE);
    let steal_modeled = run_sweeps(&steal_group, &sample, Partition::Equal, reps);
    let stealing = SweepReport {
        label: "mixed stealing".into(),
        modeled_seconds: steal_modeled,
        rows_per_second: rows as f64 / steal_modeled,
        steals: steal_group.stats().steals,
    };
    let steal_speedup = static_split.modeled_seconds / stealing.modeled_seconds;

    let mut table = TextTable::new(["group", "modeled_ms", "Mrows_per_s", "steals"]);
    for r in homogeneous.iter().chain([&static_split, &stealing]) {
        table.row([
            r.label.clone(),
            fmt(r.modeled_seconds * 1e3),
            fmt(r.rows_per_second * 1e-6),
            r.steals.to_string(),
        ]);
    }
    emit(&cli, &table);
    eprintln!("# homogeneous 4-device scaling: {scaling_4x:.2}x; mixed steal speedup: {steal_speedup:.2}x");

    let json = format!(
        "{{\n  \"config\": {{\"rows\": {rows}, \"dims\": {DIMS}, \"reps\": {reps}, \"seed\": {seed}, \"flops_per_row\": {FLOPS_PER_ROW}, \"pace\": {PACE}}},\n  \"homogeneous\": {{\n    \"devices_1\": {},\n    \"devices_2\": {},\n    \"devices_4\": {},\n    \"scaling_4x\": {scaling_4x:.3}\n  }},\n  \"mixed\": {{\n    \"static_split\": {},\n    \"work_stealing\": {},\n    \"steal_speedup\": {steal_speedup:.3}\n  }}\n}}\n",
        json_sweep(&homogeneous[0]),
        json_sweep(&homogeneous[1]),
        json_sweep(&homogeneous[2]),
        json_sweep(&static_split),
        json_sweep(&stealing),
    );
    let out = std::env::var("BENCH_MULTI_OUT").unwrap_or_else(|_| "BENCH_multi.json".into());
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(2);
    }
    eprintln!("# wrote {out}");

    // --- Perf-smoke gates: 4-device scaling and steal recovery. ---
    let gated = std::env::var("PERF_SMOKE").is_ok_and(|v| v == "1");
    let mut failed = false;
    if scaling_4x < 3.0 {
        eprintln!("PERF REGRESSION: homogeneous 4-device scaling {scaling_4x:.2}x < 3x");
        failed = true;
    } else {
        eprintln!("# multi gate ok: 4-device scaling {scaling_4x:.2}x >= 3x");
    }
    if steal_speedup < 1.5 {
        eprintln!(
            "PERF REGRESSION: mixed steal speedup {steal_speedup:.2}x < 1.5x over static split"
        );
        failed = true;
    } else {
        eprintln!("# multi gate ok: steal speedup {steal_speedup:.2}x >= 1.5x");
    }
    if stealing.steals == 0 {
        eprintln!("PERF REGRESSION: paced mixed group recorded zero steals");
        failed = true;
    }
    if failed && gated {
        std::process::exit(1);
    }

    // --- Perf-trend history: stamp this run; gate when BENCH_TREND=1.
    record_and_gate(
        HistoryEntry::stamped(
            "multi",
            vec![
                ("homogeneous_scaling_4x".to_string(), scaling_4x),
                ("mixed_steal_speedup".to_string(), steal_speedup),
            ],
        ),
        &[
            // Modeled-time ratios: nearly deterministic, so the trend
            // bands can sit much tighter than the wall-clock benches.
            TrendSpec::new("homogeneous_scaling_4x", Direction::HigherIsBetter, 0.15),
            TrendSpec::new("mixed_steal_speedup", Direction::HigherIsBetter, 0.2),
        ],
    );
}
