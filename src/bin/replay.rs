//! `kdesel-replay`: workload capture and deterministic replay driver.
//!
//! Two subcommands:
//!
//! * `record` — stands up a mixed-tenant service (a static model, an
//!   adaptive model, and an adaptive model with a Karma tuple-refresh
//!   source, on different backends), drives a seeded estimate+feedback
//!   workload through it with tracing on, and writes the versioned JSONL
//!   capture file.
//! * `run` — loads a capture, verifies every traced request has its
//!   complete `serve.request → serve.batch → serve.launch` span tree
//!   (and `serve.feedback` children), then re-drives the service from
//!   the captured model snapshots and asserts every replayed estimate is
//!   bitwise identical to the recorded one. `--speed 1x` paces
//!   operations to the recorded inter-arrival gaps; `--speed max` (the
//!   default) pushes as fast as the service absorbs them.
//!
//! Exit codes: 0 success, 1 determinism/span failure, 2 usage or IO.

use kdesel_device::{Backend, Device};
use kdesel_kde::{AdaptiveConfig, AdaptiveKde, KarmaConfig, KdeEstimator, KernelFn};
use kdesel_serve::{Capture, ModelKey, ReplaySpeed, ServeConfig, ServedModel, Service};
use kdesel_types::{QueryFeedback, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;

const USAGE: &str = "\
kdesel-replay — capture and replay kdesel-serve workloads

USAGE:
    kdesel-replay record --out FILE --requests N [--rows N] [--seed N] [--prom FILE]
    kdesel-replay run --capture FILE [--speed max|1x]

record options:
    --out FILE       capture file to write (versioned JSONL)
    --requests N     total estimate requests across the tenant mix
    --rows N         sample rows per model (default 256)
    --seed N         workload seed (default 0xca97)
    --prom FILE      also dump a Prometheus-style metrics snapshot at shutdown

run options:
    --capture FILE   capture file to load
    --speed max|1x   replay pacing (default max)
";

fn fail_usage(msg: &str) -> ! {
    eprintln!("error: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .map(|i| match args.get(i + 1) {
            Some(v) => v.clone(),
            None => fail_usage(&format!("{flag} needs a value")),
        })
}

fn parse<T: std::str::FromStr>(flag: &str, value: &str) -> T {
    value
        .parse()
        .unwrap_or_else(|_| fail_usage(&format!("invalid value {value:?} for {flag}")))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("record") => record(&args[1..]),
        Some("run") => run(&args[1..]),
        Some("--help" | "-h") => print!("{USAGE}"),
        other => fail_usage(&format!("unknown subcommand {other:?}")),
    }
}

/// The mixed-tenant registry: three models, three backends, all three
/// served-model kinds.
fn tenants(rows: usize, seed: u64) -> Vec<(ModelKey, ServedModel)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sample =
        |dims: usize| -> Vec<f64> { (0..rows * dims).map(|_| rng.gen_range(0.0..1.0)).collect() };
    let static_model = ServedModel::fixed(KdeEstimator::new(
        Device::new(Backend::CpuPar),
        &sample(2),
        2,
        KernelFn::Gaussian,
    ));
    let adaptive = ServedModel::adaptive(AdaptiveKde::new(
        Device::new(Backend::CpuSeq),
        &sample(3),
        3,
        KernelFn::Gaussian,
        AdaptiveConfig::default(),
        KarmaConfig::default(),
    ));
    let refreshed_kde = AdaptiveKde::new(
        Device::new(Backend::SimGpu),
        &sample(2),
        2,
        KernelFn::Gaussian,
        AdaptiveConfig::default(),
        // An eager Karma policy so refresh activity shows up even in
        // short captures.
        KarmaConfig {
            threshold: -0.5,
            ..KarmaConfig::default()
        },
    );
    let mut refresh_rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    let refreshed = ServedModel::adaptive_with_refresh(
        refreshed_kde,
        Box::new(move |_slot| Some((0..2).map(|_| refresh_rng.gen_range(0.0..1.0)).collect())),
    );
    vec![
        (ModelKey::new("orders", &["price", "qty"]), static_model),
        (ModelKey::new("parts", &["x", "y", "z"]), adaptive),
        (ModelKey::new("lineitem", &["disc", "tax"]), refreshed),
    ]
}

fn random_region(dims: usize, rng: &mut StdRng) -> Rect {
    let intervals: Vec<(f64, f64)> = (0..dims)
        .map(|_| {
            let lo = rng.gen_range(0.0..0.7);
            (lo, lo + rng.gen_range(0.1..0.3))
        })
        .collect();
    Rect::from_intervals(&intervals)
}

fn record(args: &[String]) {
    let out =
        PathBuf::from(arg_value(args, "--out").unwrap_or_else(|| fail_usage("record needs --out")));
    let requests: usize = parse(
        "--requests",
        &arg_value(args, "--requests").unwrap_or_else(|| fail_usage("record needs --requests")),
    );
    let rows: usize = arg_value(args, "--rows").map_or(256, |v| parse("--rows", &v));
    let seed: u64 = arg_value(args, "--seed").map_or(0xca97, |v| parse("--seed", &v));
    let prom = arg_value(args, "--prom").map(PathBuf::from);

    // Telemetry on so the observatory gauges populate alongside the
    // capture; the capture itself does not depend on it.
    kdesel_telemetry::set_enabled(true);
    let service = tenants(rows, seed)
        .into_iter()
        .fold(
            Service::builder(ServeConfig {
                capture: Some(out.clone()),
                metrics_dump: prom.clone(),
                ..ServeConfig::default()
            }),
            |builder, (key, model)| builder.register(key, model),
        )
        .build()
        .unwrap_or_else(|e| {
            eprintln!("building service: {e}");
            std::process::exit(2);
        });
    let handle = service.handle();
    let keys = handle.keys();

    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9));
    let mut feedback_sent = 0u64;
    for i in 0..requests {
        let key = &keys[i % keys.len()];
        let dims = handle.dims(key).expect("registered key");
        let region = random_region(dims, &mut rng);
        let pending = handle.submit(key, &region).expect("submit");
        let trace = pending.trace();
        let estimate = pending.wait().expect("estimate");
        // Mixed traffic: roughly half the queries report their true
        // selectivity back, exercising maintenance + Karma + refresh.
        if rng.gen_bool(0.5) {
            let actual = (estimate + rng.gen_range(-0.2..0.4)).clamp(0.0, 1.0);
            let feedback = QueryFeedback {
                region,
                estimate,
                actual,
                cardinality: (actual * 1e6) as u64,
            };
            handle
                .feedback_traced(key, feedback, trace)
                .expect("feedback");
            feedback_sent += 1;
        }
    }
    for key in &keys {
        handle.flush(key).expect("flush");
    }
    service.shutdown().unwrap_or_else(|e| {
        eprintln!("shutdown: {e}");
        std::process::exit(2);
    });
    eprintln!(
        "# recorded {requests} requests ({feedback_sent} with feedback) across {} models -> {}",
        keys.len(),
        out.display()
    );
    if let Some(prom) = prom {
        eprintln!("# metrics snapshot -> {}", prom.display());
    }
}

fn run(args: &[String]) {
    let path = PathBuf::from(
        arg_value(args, "--capture").unwrap_or_else(|| fail_usage("run needs --capture")),
    );
    let speed = match arg_value(args, "--speed").as_deref() {
        None | Some("max") => ReplaySpeed::Max,
        Some("1x") => ReplaySpeed::Realtime,
        Some(other) => fail_usage(&format!("unknown speed {other:?} (use max or 1x)")),
    };

    let capture = Capture::load(&path).unwrap_or_else(|e| {
        eprintln!("loading capture: {e}");
        std::process::exit(2);
    });
    eprintln!(
        "# loaded {}: {} models, {} operations",
        path.display(),
        capture.models.len(),
        capture.ops.len()
    );
    let spans = capture.verify_spans().unwrap_or_else(|e| {
        eprintln!("SPAN TREE INCOMPLETE: {e}");
        std::process::exit(1);
    });
    eprintln!("# span trees verified for {spans} traced operations");
    let started = std::time::Instant::now();
    let outcome = capture.replay(speed).unwrap_or_else(|e| {
        eprintln!("REPLAY DIVERGED: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "# replay ok in {:?}: {} estimates bitwise-identical, {} feedback applied, \
         {} replacements re-installed",
        started.elapsed(),
        outcome.estimates,
        outcome.feedback,
        outcome.replacements
    );
}
