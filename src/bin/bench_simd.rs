//! SIMD/SoA sweep microbenchmark (BENCH_simd.json).
//!
//! Measures the columnar, lane-vectorized sweep kernels against the
//! scalar row-major (AoS) path they replaced, on a single thread:
//!
//! * **estimate sweep** — `KdeEstimator::estimate` (SoA stripes +
//!   `F64s` lanes) vs a hand-rolled `map_rows_reduce` over the AoS
//!   buffer calling `KernelFn::contribution` per row — exactly the
//!   pre-SoA hot path,
//! * **fused gradient sweep** — `estimate_with_gradient` vs the AoS
//!   `map_rows_multi_reduce` + `contribution_with_gradient` equivalent.
//!
//! Both kernels are measured; the Epanechnikov estimate sweep is the
//! gated one (pure polynomial arithmetic, so lane speedup is the whole
//! story), while Gaussian keeps a scalar `erf` per lane and only gains
//! from the columnar layout. The vector sweep pre-scales the bandwidth
//! reciprocals (division-free inner loop), so it agrees with the
//! division-form scalar baseline to ~1 ulp per factor rather than
//! bitwise — the bench asserts the 1e-12 agreement up front.
//!
//! Results go to `BENCH_simd.json` (override with `BENCH_SIMD_OUT`).
//! With `PERF_SMOKE=1` the run fails (exit 1) if the Epanechnikov
//! estimate sweep is less than 2x faster than the scalar AoS baseline
//! — the perf-smoke gate.

use kdesel_bench::history::{record_and_gate, Direction, HistoryEntry, TrendSpec};
use kdesel_bench::{emit, Cli};
use kdesel_device::{Backend, Device};
use kdesel_engine::report::{fmt, TextTable};
use kdesel_kde::{KdeEstimator, KernelFn};
use kdesel_types::Rect;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Instant;

/// One scalar-vs-vector comparison.
struct PathReport {
    label: String,
    scalar_seconds: f64,
    simd_seconds: f64,
}

impl PathReport {
    fn speedup(&self) -> f64 {
        self.scalar_seconds / self.simd_seconds
    }
}

/// Median wall time of `reps` runs of `f`.
fn wall_median(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn json_path(r: &PathReport) -> String {
    format!(
        "{{\"scalar_aos_seconds\": {:e}, \"simd_soa_seconds\": {:e}, \"speedup\": {:.3}}}",
        r.scalar_seconds,
        r.simd_seconds,
        r.speedup()
    )
}

/// Runs both sweeps for one kernel and returns the two comparisons.
fn bench_kernel(
    kernel: KernelFn,
    sample: &[f64],
    dims: usize,
    region: &Rect,
    reps: usize,
) -> (PathReport, PathReport) {
    let name = match kernel {
        KernelFn::Gaussian => "gaussian",
        KernelFn::Epanechnikov => "epanechnikov",
    };
    // Vectorized side: the estimator itself (SoA staging + lane sweeps).
    let mut est = KdeEstimator::new(Device::new(Backend::CpuSeq), sample, dims, kernel);
    let bw: Vec<f64> = est.bandwidth().to_vec();
    let n = sample.len() / dims;

    // Scalar side: the pre-SoA hot path — a row-major device buffer and
    // the per-row scalar kernel, one launch via `map_rows_reduce`, with
    // the same bounds transfer and retained contribution buffer the old
    // `estimate` performed.
    let aos_device = Device::new(Backend::CpuSeq);
    let aos = aos_device.upload(sample);
    let (lo, hi) = (region.lo(), region.hi());
    let flops = kernel.flops_per_factor() * dims as f64;
    let scalar_estimate = || {
        let mut bounds = Vec::with_capacity(2 * dims);
        bounds.extend_from_slice(lo);
        bounds.extend_from_slice(hi);
        let _bounds_buf = aos_device.upload(&bounds);
        let (sum, contributions) = aos_device.map_rows_reduce(&aos, dims, flops, true, |row| {
            kernel.contribution(row, lo, hi, &bw)
        });
        black_box(contributions);
        (sum / n as f64).clamp(0.0, 1.0)
    };

    // The SoA sweep multiplies by hoisted bandwidth reciprocals where
    // the scalar kernel divides, so the two agree to ~1 ulp per factor
    // (the estimator pins the same 1e-12 band against its host oracle).
    let scalar_value = scalar_estimate();
    let simd_value = est.estimate(region);
    assert!(
        (scalar_value - simd_value).abs() <= 1e-12,
        "{name}: scalar AoS and SIMD SoA estimates diverged: {scalar_value} vs {simd_value}"
    );

    let estimate = PathReport {
        label: format!("{name}/estimate"),
        scalar_seconds: wall_median(reps, || {
            black_box(scalar_estimate());
        }),
        simd_seconds: wall_median(reps, || {
            black_box(est.estimate(region));
        }),
    };

    // Fused value+gradient sweep (width 1+d), scalar AoS equivalent.
    let gflops = kernel.flops_per_factor() * (dims * 2) as f64 + (dims * dims) as f64;
    let width = 1 + dims;
    let scalar_fused = || {
        let (sums, _) =
            aos_device.map_rows_multi_reduce(&aos, dims, width, gflops, false, |row, out| {
                out[0] = kernel.contribution_with_gradient(row, lo, hi, &bw, &mut out[1..]);
            });
        black_box(sums);
    };
    let fused = PathReport {
        label: format!("{name}/fused_gradient"),
        scalar_seconds: wall_median(reps, scalar_fused),
        simd_seconds: wall_median(reps, || {
            black_box(est.estimate_with_gradient(region));
        }),
    };
    (estimate, fused)
}

fn main() {
    let cli = Cli::parse();
    let dims = 8;
    let points = cli.rows_or(1 << 14, 1 << 16);
    let reps = cli.reps_or(15, 41);
    let seed = cli.seed.unwrap_or(0x51d0);
    eprintln!("# simd microbench: {points} sample points, {dims}D, {reps} reps, single thread");

    let mut rng = StdRng::seed_from_u64(seed);
    let sample: Vec<f64> = (0..points * dims)
        .map(|_| rng.gen_range(0.0..100.0))
        .collect();
    // A wide query: nearly every point contributes in every dimension, so
    // the scalar path gets no early-exit advantage and the comparison
    // isolates layout + vectorization.
    let center = vec![50.0; dims];
    let extent = vec![80.0; dims];
    let region = Rect::centered(&center, &extent);

    let (epa_est, epa_fused) = bench_kernel(KernelFn::Epanechnikov, &sample, dims, &region, reps);
    let (gauss_est, gauss_fused) = bench_kernel(KernelFn::Gaussian, &sample, dims, &region, reps);

    let rows = [&epa_est, &epa_fused, &gauss_est, &gauss_fused];
    let mut table = TextTable::new(["sweep", "scalar_ms", "simd_ms", "speedup"]);
    for r in rows {
        table.row([
            r.label.clone(),
            fmt(r.scalar_seconds * 1e3),
            fmt(r.simd_seconds * 1e3),
            format!("{:.2}x", r.speedup()),
        ]);
    }
    emit(&cli, &table);

    let json = format!(
        "{{\n  \"config\": {{\"points\": {points}, \"dims\": {dims}, \"reps\": {reps}, \"seed\": {seed}}},\n  \"epanechnikov\": {{\n    \"estimate\": {},\n    \"fused_gradient\": {}\n  }},\n  \"gaussian\": {{\n    \"estimate\": {},\n    \"fused_gradient\": {}\n  }}\n}}\n",
        json_path(&epa_est),
        json_path(&epa_fused),
        json_path(&gauss_est),
        json_path(&gauss_fused),
    );
    let out = std::env::var("BENCH_SIMD_OUT").unwrap_or_else(|_| "BENCH_simd.json".into());
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(2);
    }
    eprintln!("# wrote {out}");

    // --- Perf-smoke gate: vectorized Epanechnikov sweep must hold 2x. ---
    let gated = std::env::var("PERF_SMOKE").is_ok_and(|v| v == "1");
    if epa_est.speedup() < 2.0 {
        if gated {
            eprintln!(
                "PERF REGRESSION: epanechnikov estimate sweep speedup {:.2}x < 2x",
                epa_est.speedup()
            );
            std::process::exit(1);
        }
        eprintln!(
            "# warning: epanechnikov estimate sweep speedup {:.2}x < 2x (gate off)",
            epa_est.speedup()
        );
    } else {
        eprintln!(
            "# simd gate ok: epanechnikov estimate sweep {:.2}x over scalar AoS",
            epa_est.speedup()
        );
    }

    // --- Perf-trend history: stamp this run; gate when BENCH_TREND=1.
    record_and_gate(
        HistoryEntry::stamped(
            "simd",
            vec![
                (
                    "epanechnikov_estimate_speedup".to_string(),
                    epa_est.speedup(),
                ),
                ("gaussian_estimate_speedup".to_string(), gauss_est.speedup()),
                (
                    "epanechnikov_fused_speedup".to_string(),
                    epa_fused.speedup(),
                ),
            ],
        ),
        &[
            // Wall-clock SIMD speedups: wide noise headroom, gated on the
            // kernel the perf-smoke gate also watches.
            TrendSpec::new(
                "epanechnikov_estimate_speedup",
                Direction::HigherIsBetter,
                0.4,
            ),
        ],
    );
}
