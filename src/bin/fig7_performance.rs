//! Figure 7: estimator runtime with growing model size.
//!
//! 100 UV queries on a synthetic 8D table; Heuristic and Adaptive on the
//! simulated GPU (GTX-460 cost profile) and the multicore CPU (Xeon E5620
//! OpenCL profile), plus STHoles (measured wall-clock, estimation only).
//! "modeled_ms" is the cost-model time the reproduction compares against
//! the paper; "measured_ms" is this machine's actual wall time.

use kdesel_bench::{emit, Cli};
use kdesel_engine::experiments::perf::{run_perf, PerfConfig};
use kdesel_engine::report::{fmt, TextTable};

fn main() {
    let cli = Cli::parse();
    let config = PerfConfig {
        rows: cli.rows_or(100_000, 3_000_000),
        sample_sizes: if cli.full {
            (10..=20).map(|p| 1usize << p).collect()
        } else {
            (10..=17).map(|p| 1usize << p).collect()
        },
        queries: if cli.full { 100 } else { 25 },
        seed: cli.seed.unwrap_or(0xf177),
        ..Default::default()
    };
    eprintln!(
        "# Figure 7: estimation overhead vs model size (synthetic 8D, rows={}, {} UV queries)",
        config.rows, config.queries
    );
    let series = run_perf(&config);
    let mut table = TextTable::new(["series", "model_size", "modeled_ms", "measured_ms"]);
    for s in &series {
        for p in &s.points {
            table.row([
                s.label.clone(),
                p.model_size.to_string(),
                p.modeled_seconds
                    .map(|v| fmt(v * 1e3))
                    .unwrap_or_else(|| "-".to_string()),
                fmt(p.measured_seconds * 1e3),
            ]);
        }
    }
    emit(&cli, &table);
}
