#!/usr/bin/env python3
"""Folds the results/*.txt experiment outputs into EXPERIMENTS.md.

Replaces everything after the `<!-- RESULTS -->` marker with fenced blocks
of each result file, prefixed by its regenerating command.
"""
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
ORDER = [
    ("fig4_static_3d", "Figure 4 (3D static quality + 3D win rates)"),
    ("fig5_static_8d", "Figure 5 (8D static quality + 8D win rates)"),
    ("table1_winrates", "Table 1 (pooled win rates)"),
    ("fig6_model_size", "Figure 6 (error vs model size)"),
    ("fig7_performance", "Figure 7 (overhead vs model size)"),
    ("fig8_dynamic", "Figure 8 (changing data)"),
    ("ablation_log_updates", "§5.5 ablation (log vs linear updates)"),
    ("ablation_params", "Parameter sweep"),
    ("baselines_extra", "Extended baselines (AVI, sampling)"),
]

def main() -> int:
    exp = ROOT / "EXPERIMENTS.md"
    text = exp.read_text()
    marker = "<!-- RESULTS -->"
    if marker not in text:
        print("marker missing in EXPERIMENTS.md", file=sys.stderr)
        return 1
    head = text.split(marker)[0] + marker + "\n"
    chunks = []
    for name, title in ORDER:
        path = ROOT / "results" / f"{name}.txt"
        if not path.exists():
            chunks.append(f"\n### {title}\n\n*(not recorded in this run — "
                          f"regenerate with `cargo run --release -p kdesel-bench --bin {name}`)*\n")
            continue
        body = path.read_text().rstrip()
        chunks.append(f"\n### {title}\n\n```\n{body}\n```\n")
    exp.write_text(head + "".join(chunks))
    print("EXPERIMENTS.md updated with", sum((ROOT / 'results' / f'{n}.txt').exists() for n, _ in ORDER), "result files")
    return 0

if __name__ == "__main__":
    raise SystemExit(main())
