#!/usr/bin/env bash
# Full local CI gate: build, tests, lints, formatting. Works offline
# (the workspace has no external dependencies; --offline keeps cargo
# from ever touching the network).
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "=== $* ==="
    "$@"
}

run cargo build --release --offline --workspace
run cargo test -q --offline --workspace
run cargo clippy --offline --workspace --all-targets -- -D warnings
run cargo fmt --check --all

echo "=== all checks passed ==="
