#!/usr/bin/env bash
# Full local CI gate: build, tests, lints, formatting. Works offline
# (the workspace has no external dependencies; --offline keeps cargo
# from ever touching the network).
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "=== $* ==="
    "$@"
}

run cargo build --release --offline --workspace
run cargo test -q --offline --workspace
run cargo clippy --offline --workspace --all-targets -- -D warnings
run cargo fmt --check --all

# Optional perf gate: PERF_SMOKE=1 scripts/check.sh additionally runs the
# fusion microbench and fails on a >2x modeled-cost regression of the
# estimate hot path (see scripts/perf_smoke.sh).
if [[ "${PERF_SMOKE:-0}" == "1" ]]; then
    run scripts/perf_smoke.sh
fi

echo "=== all checks passed ==="
