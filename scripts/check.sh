#!/usr/bin/env bash
# Full local CI gate: build, tests, lints, formatting. Works offline
# (the workspace has no external dependencies; --offline keeps cargo
# from ever touching the network).
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "=== $* ==="
    "$@"
}

run cargo build --release --offline --workspace
run cargo test -q --offline --workspace
# The serving layer's threaded stress test only means much with optimized
# code and real contention, so it is #[ignore]d in the default pass and
# run explicitly in release mode here.
run cargo test -q --offline --release -p kdesel-serve -- --ignored
# Likewise the multi-device work-stealing stress: a lopsided paced group
# sweeping hundreds of queries against a single-device bitwise mirror
# only stresses the steal path with optimized code, so it too is
# #[ignore]d by default and run here in release mode.
run cargo test -q --offline --release -p kdesel --test multi_device -- --ignored
# The hybrid-estimator serve round-trip (checkpoint, restart, bitwise
# continuation of the router + tuned KDE member) is the bake-off
# subsystem's persistence contract; run it by name so a checkpoint-format
# change can't slip through a filtered test run.
run cargo test -q --offline --release -p kdesel --test bakeoff \
    hybrid_snapshot_roundtrip_through_serve
run cargo clippy --offline --workspace --all-targets -- -D warnings
run cargo fmt --check --all

# Capture/replay determinism gate: record a 200-request mixed-tenant
# workload, then verify its span trees and replay it at max speed.
# kdesel-replay exits non-zero on any bitwise estimate mismatch or
# dropped/incomplete span.
replay_dir="$(mktemp -d)"
trap 'rm -rf "$replay_dir"' EXIT
run cargo run --release --offline --bin kdesel-replay -- \
    record --out "$replay_dir/capture.jsonl" --requests 200
run cargo run --release --offline --bin kdesel-replay -- \
    run --capture "$replay_dir/capture.jsonl" --speed max

# Cost-model calibration smoke: a quick sequential-CPU microbenchmark
# sweep must converge and model its own measurements to within 20%
# median residual — the same acceptance bound tests/cost_calibration.rs
# pins. Exit 1 from kdesel-calibrate names the failing quantity.
run cargo run --release --offline --bin kdesel-calibrate -- \
    --backend cpu-seq --quick --gate 20 --out "$replay_dir/calibration.json"

# Optional perf gate: PERF_SMOKE=1 scripts/check.sh additionally runs the
# fusion, serving, SIMD, multi-device and bake-off microbenches and fails
# on a >2x modeled-cost regression of the estimate hot path, <2x modeled
# coalescing at batch 16, a reappearance of the max_batch=16 throughput
# cliff in the adaptive window sweep, a <2x wall-clock SoA sweep
# speedup, <3x homogeneous 4-device group scaling, a <1.5x
# work-stealing recovery on the lopsided mixed group, or a hybrid-router
# q-error p95 worse than the best single estimator family's on the mixed
# bake-off workload (see scripts/perf_smoke.sh). Add BENCH_TREND=1 to
# also gate each bench's metrics against the rolling median of
# results/BENCH_history.jsonl.
if [[ "${PERF_SMOKE:-0}" == "1" ]]; then
    run scripts/perf_smoke.sh
fi

echo "=== all checks passed ==="
