#!/usr/bin/env bash
# Regenerates the paper's tables/figures into results/.
# Quick profile by default; pass --full for paper-scale parameters.
#
# Note: `table1_winrates` reruns all 40 static cells (3D + 8D) to print the
# pooled Table 1 matrix. The quick pass skips it because fig4/fig5 already
# print the same matrix per dimensionality; run it explicitly (or with
# --full) for the pooled version:
#   cargo run --release --bin table1_winrates
set -euo pipefail
cd "$(dirname "$0")/.."

ARGS=("$@")
run() {
    local name=$1
    echo "=== $name ${ARGS[*]:-} ==="
    cargo run --release --bin "$name" -- "${ARGS[@]}" \
        | tee "results/$name.txt"
}

cargo build --release --bins

run fig4_static_3d
run fig6_model_size
run fig7_performance
run fig8_dynamic
run ablation_log_updates
run ablation_params
run baselines_extra
run fig5_static_8d

echo "All experiment outputs written to results/."
