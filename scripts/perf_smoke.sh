#!/usr/bin/env bash
# Perf smoke test: runs the fusion, serving and SIMD benches in quick mode.
#
# * bench_fusion fails when the modeled cost of the fused estimate hot
#   path regresses by more than 2x against the checked-in baseline
#   (BENCH_fusion.json).
# * bench_serve fails when coalesced serving is less than 2x faster
#   (modeled) than one-request-per-launch serving at batch 16 — the gate
#   is built into the bench itself, no baseline file needed.
# * bench_simd (run with PERF_SMOKE=1) fails when the vectorized SoA
#   Epanechnikov estimate sweep is less than 2x faster than the scalar
#   row-major (AoS) baseline at n=16384, d=8, single thread. This one
#   measures wall clock, so it is the only machine-sensitive gate; the
#   division-free SoA sweep holds ~2.5x on a plain AVX2 core, leaving
#   headroom over the threshold.
#
# bench_fusion/bench_serve modeled seconds come from the deterministic
# device cost model, so those gates are immune to machine noise — they
# only trip when the launch / flop structure of a hot path actually
# changes.
#
# Usage: scripts/perf_smoke.sh
# Refresh the checked-in reports by running, from the repo root:
#   cargo run --release --bin bench_fusion   (writes BENCH_fusion.json)
#   cargo run --release --bin bench_serve    (writes BENCH_serve.json)
#   cargo run --release --bin bench_simd     (writes BENCH_simd.json)
# and committing the results.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline --bin bench_fusion --bin bench_serve --bin bench_simd
out=$(mktemp /tmp/bench_fusion.XXXXXX.json)
serve_out=$(mktemp /tmp/bench_serve.XXXXXX.json)
simd_out=$(mktemp /tmp/bench_simd.XXXXXX.json)
trap 'rm -f "$out" "$serve_out" "$simd_out"' EXIT
BENCH_FUSION_BASELINE=BENCH_fusion.json BENCH_FUSION_OUT="$out" \
    ./target/release/bench_fusion
BENCH_SERVE_OUT="$serve_out" ./target/release/bench_serve
PERF_SMOKE=1 BENCH_SIMD_OUT="$simd_out" ./target/release/bench_simd
echo "=== perf smoke passed ==="
