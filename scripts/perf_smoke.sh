#!/usr/bin/env bash
# Perf smoke test: runs the fusion, serving and SIMD benches in quick mode.
#
# * bench_fusion fails when the modeled cost of the fused estimate hot
#   path regresses by more than 2x against the checked-in baseline
#   (BENCH_fusion.json).
# * bench_serve fails when coalesced serving is less than 2x faster
#   (modeled) than one-request-per-launch serving at batch 16, or — run
#   with PERF_SMOKE=1 — when the calibrated adaptive-wait window sweep
#   shows the max_batch=16 throughput cliff again (wall clock, adaptive
#   throughput at 16 must stay within 35% of the best small window).
# * bench_simd (run with PERF_SMOKE=1) fails when the vectorized SoA
#   Epanechnikov estimate sweep is less than 2x faster than the scalar
#   row-major (AoS) baseline at n=16384, d=8, single thread. The
#   division-free SoA sweep holds ~2.5x on a plain AVX2 core, leaving
#   headroom over the threshold.
# * bench_multi (run with PERF_SMOKE=1) fails when a homogeneous
#   4-device group delivers less than 3x single-device modeled
#   throughput, or when the paced work-stealing mixed group (full-rate
#   CPU + 10%-fission simulated GPU, equal split) beats the
#   stealing-off static split by less than 1.5x, or records no steals.
#   Both ratios come from the deterministic cost model (stealing off in
#   the scaling arm, paced claims in the stealing arm), so the gates
#   are machine-insensitive: ~3.2x and ~1.6x with no run-to-run jitter.
# * bench_bakeoff (run with PERF_SMOKE=1) fails when the hybrid router's
#   q-error p95 over the mixed bake-off workload (small/highdim/shifting
#   segments) exceeds the best single family's — the router must never
#   lose to its own best member. Pure estimation quality on seeded
#   deterministic workloads, so the gate is machine-insensitive.
#
# bench_fusion modeled seconds and the bench_serve coalescing speedup
# come from the deterministic device cost model, so those gates are
# immune to machine noise — they only trip when the launch / flop
# structure of a hot path actually changes. The serve cliff gate and the
# SIMD gate measure wall clock and are machine-sensitive.
#
# Every bench run also appends a git-rev-stamped metrics line to the
# perf-trend history (results/BENCH_history.jsonl by default; this
# script points BENCH_HISTORY_OUT at a throwaway copy seeded from the
# checked-in history so smoke runs don't dirty the tree). BENCH_TREND=1
# turns the history into a gate: a metric falling outside its tolerance
# of the rolling median of the last 5 runs fails with the metric name,
# measured value, and threshold. Trend-gate the smoke run with:
#   BENCH_TREND=1 scripts/perf_smoke.sh
#
# Usage: scripts/perf_smoke.sh
# Refresh the checked-in reports by running, from the repo root:
#   cargo run --release --bin bench_fusion   (writes BENCH_fusion.json)
#   cargo run --release --bin bench_serve    (writes BENCH_serve.json)
#   cargo run --release --bin bench_simd     (writes BENCH_simd.json)
#   cargo run --release --bin bench_multi    (writes BENCH_multi.json)
#   cargo run --release --bin bench_bakeoff  (writes BENCH_bakeoff.json)
# and committing the results (plus the results/BENCH_history.jsonl lines
# those runs append).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline --bin bench_fusion --bin bench_serve \
    --bin bench_simd --bin bench_multi --bin bench_bakeoff
out=$(mktemp /tmp/bench_fusion.XXXXXX.json)
serve_out=$(mktemp /tmp/bench_serve.XXXXXX.json)
simd_out=$(mktemp /tmp/bench_simd.XXXXXX.json)
multi_out=$(mktemp /tmp/bench_multi.XXXXXX.json)
bakeoff_out=$(mktemp /tmp/bench_bakeoff.XXXXXX.json)
hist_out=$(mktemp /tmp/bench_history.XXXXXX.jsonl)
trap 'rm -f "$out" "$serve_out" "$simd_out" "$multi_out" "$bakeoff_out" "$hist_out"' EXIT
# Seed the throwaway history with the checked-in one so BENCH_TREND=1 has
# a rolling baseline to compare against.
if [[ -f results/BENCH_history.jsonl ]]; then
    cp results/BENCH_history.jsonl "$hist_out"
fi
export BENCH_HISTORY_OUT="$hist_out"
BENCH_FUSION_BASELINE=BENCH_fusion.json BENCH_FUSION_OUT="$out" \
    ./target/release/bench_fusion
PERF_SMOKE=1 BENCH_SERVE_OUT="$serve_out" ./target/release/bench_serve
PERF_SMOKE=1 BENCH_SIMD_OUT="$simd_out" ./target/release/bench_simd
PERF_SMOKE=1 BENCH_MULTI_OUT="$multi_out" ./target/release/bench_multi
PERF_SMOKE=1 BENCH_BAKEOFF_OUT="$bakeoff_out" ./target/release/bench_bakeoff
echo "=== perf smoke passed ==="
