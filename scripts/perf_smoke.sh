#!/usr/bin/env bash
# Perf smoke test: runs the fusion and serving benches in quick mode.
#
# * bench_fusion fails when the modeled cost of the fused estimate hot
#   path regresses by more than 2x against the checked-in baseline
#   (BENCH_fusion.json).
# * bench_serve fails when coalesced serving is less than 2x faster
#   (modeled) than one-request-per-launch serving at batch 16 — the gate
#   is built into the bench itself, no baseline file needed.
#
# Modeled seconds come from the deterministic device cost model, so both
# gates are immune to machine noise — they only trip when the launch /
# flop structure of a hot path actually changes.
#
# Usage: scripts/perf_smoke.sh
# Refresh the checked-in reports by running, from the repo root:
#   cargo run --release --bin bench_fusion   (writes BENCH_fusion.json)
#   cargo run --release --bin bench_serve    (writes BENCH_serve.json)
# and committing the results.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline --bin bench_fusion --bin bench_serve
out=$(mktemp /tmp/bench_fusion.XXXXXX.json)
serve_out=$(mktemp /tmp/bench_serve.XXXXXX.json)
trap 'rm -f "$out" "$serve_out"' EXIT
BENCH_FUSION_BASELINE=BENCH_fusion.json BENCH_FUSION_OUT="$out" \
    ./target/release/bench_fusion
BENCH_SERVE_OUT="$serve_out" ./target/release/bench_serve
echo "=== perf smoke passed ==="
