#!/usr/bin/env bash
# Perf smoke test: runs the fusion microbench in quick mode and fails when
# the modeled cost of the fused estimate hot path regresses by more than 2x
# against the checked-in baseline (BENCH_fusion.json). Modeled seconds come
# from the deterministic device cost model, so the gate is immune to
# machine noise — it only trips when the launch/flop structure of the hot
# path actually changes.
#
# Usage: scripts/perf_smoke.sh
# Refresh the baseline by running `cargo run --release --bin bench_fusion`
# from the repo root (writes BENCH_fusion.json) and committing the result.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline --bin bench_fusion
out=$(mktemp /tmp/bench_fusion.XXXXXX.json)
trap 'rm -f "$out"' EXIT
BENCH_FUSION_BASELINE=BENCH_fusion.json BENCH_FUSION_OUT="$out" \
    ./target/release/bench_fusion
echo "=== perf smoke passed ==="
